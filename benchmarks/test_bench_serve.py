"""Study-service smoke benchmark: in-flight dedup and warm zero-cost serving.

A real ``repro serve`` daemon runs as a child process; the benchmark
drives it over HTTP exactly the way clients do:

1. **concurrent** -- two identical studies submitted simultaneously:
   the in-flight futures table must collapse them onto exactly one set
   of backend invocations (the acceptance bar for the dedup tier);
2. **warm** -- the same study submitted again: zero backend invocations,
   every job served from the daemon's in-process memory tier, and the
   ``study`` record byte-for-byte identical to the cold one.

The measured wall times and the dedup counters land in the benchmark
JSON artifact (``BENCH_6.json`` in CI) via ``bench_json_record``.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parents[1] / "src"

_SPEC = {
    "application": "qv",
    "num_qubits": 3,
    "num_circuits": 2,
    "sets": ["S1", "G3"],
    "shots": 1500,
}
_UNIQUE_JOBS = 4  # 2 circuits x 2 sets


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """A live ``repro serve`` child on an ephemeral port; yields the port."""
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--cache-dir", cache_dir],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = process.stdout.readline()
        match = re.search(r"http://[\d.]+:(\d+)", line)
        assert match, f"daemon did not announce its address: {line!r}"
        yield int(match.group(1))
    finally:
        process.terminate()
        process.wait(timeout=30)


def _submit(port: int):
    from repro.service.client import submit_study

    return list(submit_study(_SPEC, port=port, timeout=600.0))


def _study_line(records) -> str:
    (study,) = [r for r in records if r["type"] == "study"]
    return json.dumps(study, sort_keys=True, separators=(",", ":"))


def test_serve_concurrent_dedup_and_warm_replay(daemon, run_once, bench_json_record):
    port = daemon
    results = {}

    def concurrent_pair():
        threads = {
            tag: threading.Thread(
                target=lambda tag=tag: results.__setitem__(tag, _submit(port))
            )
            for tag in ("a", "b")
        }
        for thread in threads.values():
            thread.start()
        for thread in threads.values():
            thread.join()
        return results

    start = time.perf_counter()
    run_once(concurrent_pair)
    concurrent_elapsed = time.perf_counter() - start

    stats_a = results["a"][-1]
    stats_b = results["b"][-1]
    executed = stats_a["executed"] + stats_b["executed"]
    # The tentpole contract: two simultaneous identical studies cost ONE
    # set of backend invocations between them.
    assert executed == _UNIQUE_JOBS, (stats_a, stats_b)
    assert _study_line(results["a"]) == _study_line(results["b"])

    warm_start = time.perf_counter()
    warm = _submit(port)
    warm_elapsed = time.perf_counter() - warm_start
    assert warm[-1]["executed"] == 0  # zero backend invocations
    assert warm[-1]["from_memory"] == _UNIQUE_JOBS
    assert _study_line(warm) == _study_line(results["a"])  # byte-identical

    from repro.service.client import fetch_stats

    daemon_stats = fetch_stats(port=port)
    assert sum(daemon_stats["backend_invocations"].values()) == _UNIQUE_JOBS
    bench_json_record(
        concurrent_wall_s=round(concurrent_elapsed, 4),
        warm_wall_s=round(warm_elapsed, 4),
        warm_speedup=round(concurrent_elapsed / max(warm_elapsed, 1e-9), 2),
        executed_cold=executed,
        executed_warm=warm[-1]["executed"],
        coalesced=stats_a["coalesced"] + stats_b["coalesced"],
    )
