"""Benchmark: greedy instruction-set design (the Section VIII.A selection).

Regenerates, algorithmically, the selection step the paper performs by
inspecting the Figure 8 heatmaps: measure the expressivity of a grid of
candidate fSim gate types, then grow an instruction set greedily and watch
the workload-weighted instruction count saturate around a handful of types
while calibration time keeps growing linearly.
"""

from repro.applications import unitary_ensembles
from repro.core.expressivity import (
    candidate_gate_grid,
    design_tradeoff_curve,
    expressivity_table,
    knee_of_curve,
)
from repro.visualization.text import render_table


def _run_design(bench_decomposer):
    unitaries = unitary_ensembles(3, seed=12)
    selected = {name: unitaries[name] for name in ("qv", "qaoa", "swap")}
    candidates = candidate_gate_grid(4, 4, include_swap=True)
    table = expressivity_table(selected, candidates, decomposer=bench_decomposer, max_layers=4)
    designs = design_tradeoff_curve(table, max_gate_types=6)
    return designs


def test_bench_instruction_set_design(benchmark, bench_decomposer):
    designs = benchmark.pedantic(_run_design, args=(bench_decomposer,), rounds=1, iterations=1)
    rows = [
        {
            "#types": design.num_gate_types,
            "mean 2Q count": round(design.mean_instruction_count, 3),
            "calibration h": design.calibration_hours,
            "selection": "; ".join(design.selection),
        }
        for design in designs
    ]
    print()
    print("Greedy instruction-set design over a 4x4 fSim candidate grid")
    print(render_table(rows))
    knee = knee_of_curve(designs, tolerance=0.05)
    print(f"knee of the curve: {knee} gate types (paper recommends 4-8)")

    # Shape checks mirroring the paper's conclusions.
    costs = [design.mean_instruction_count for design in designs]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(costs, costs[1:]))
    assert designs[-1].calibration_hours > designs[0].calibration_hours
    assert 1 <= knee <= 6
    # Once a few types are available, the design covers the SWAP workload
    # with a (near-)native gate -- either the hardware SWAP candidate or its
    # fSim(pi/2, pi) equivalent on the grid (the G7/R5 observation).
    largest = designs[-1]
    assert largest.per_application_counts["swap"] <= 2.0
