"""Ablation benchmark for the device-mapping stage (router lookahead and layout).

The paper attributes much of the continuous-set advantage on
connectivity-limited devices to routing SWAPs (Section VIII.B); this
benchmark quantifies how many SWAPs the router inserts for an
all-to-all-interacting QAOA workload on the Sycamore grid and how the
lookahead window affects it.
"""

import numpy as np

from repro.applications import qaoa_maxcut_circuit
from repro.compiler.layout import choose_layout
from repro.compiler.routing import route_circuit
from repro.devices.sycamore import sycamore_device


def all_to_all_qaoa(num_qubits: int):
    edges = [(a, b) for a in range(num_qubits) for b in range(a + 1, num_qubits)]
    return qaoa_maxcut_circuit(num_qubits, edges=edges, gamma=0.4, beta=0.3)


def test_bench_routing_lookahead_ablation(run_once):
    device = sycamore_device()
    device.register_gate_type("syc")
    circuit = all_to_all_qaoa(6)
    layout = choose_layout(circuit, device, ["syc"])

    def sweep():
        swaps = {}
        for lookahead in (0, 5, 20):
            routed = route_circuit(circuit, device, layout, lookahead=lookahead)
            swaps[lookahead] = routed.num_swaps
        return swaps

    swaps = run_once(sweep)
    print()
    print(f"  swaps by lookahead window: {swaps}")
    # A 6-qubit all-to-all workload on a grid needs some routing.
    assert all(count >= 1 for count in swaps.values())
    # Lookahead should not catastrophically increase SWAP counts.
    assert swaps[20] <= swaps[0] + 4


def test_bench_layout_quality(benchmark):
    """Placement pass cost plus a sanity check that chosen subsets are connected."""
    device = sycamore_device()
    device.register_gate_type("syc")
    circuit = all_to_all_qaoa(5)

    layout = benchmark(choose_layout, circuit, device, ["syc"])
    assert device.topology.is_connected_subset(layout.physical_qubits)
    assert len(set(layout.program_to_slot.values())) == 5
