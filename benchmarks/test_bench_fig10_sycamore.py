"""Figure 10 (a-e) benchmark: instruction-set study on the Google Sycamore model.

Paper result: multi-type sets (G1-G7) reduce instruction counts (G7 by
1.3-1.9x) and improve HOP/XED/success/fidelity versus single-type sets;
G7 (with native SWAP) approaches the continuous FullfSim family, whose
advantage disappears once its average error rate is 1.5-2.5x worse.
"""

from repro.experiments.fig10 import Figure10Config, run_figure10


def test_bench_figure10(run_once, bench_decomposer):
    config = Figure10Config.quick()
    result = run_once(run_figure10, config, bench_decomposer)
    print()
    print(result.format_table())

    expected_sets = set(config.selected_sets())
    for study in result.studies():
        assert set(study.per_set) == expected_sets

    for study in result.studies():
        g7 = study.per_set["G7"].mean_two_qubit_count
        singles = [
            study.per_set[name].mean_two_qubit_count
            for name in study.per_set
            if name.startswith("S")
        ]
        # G7 (with native SWAP) never needs more hardware gates than the
        # single-type sets (the paper's 1.3-1.9x reduction).
        assert g7 <= min(singles) + 1e-9

    # The scaled FullfSim variant must not beat the unscaled one.
    if "FullfSim-2x" in result.qv.per_set:
        assert (
            result.qv.per_set["FullfSim-2x"].mean_metric
            <= result.qv.per_set["FullfSim"].mean_metric + 0.05
        )
