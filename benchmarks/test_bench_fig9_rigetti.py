"""Figure 9 benchmark: instruction-set study on the Rigetti Aspen-8 model.

Paper result: multi-type sets (R1-R5) beat every single-type set on HOP,
XED and QFT success rate; adding the native SWAP (R5) brings reliability
close to the continuous FullXY family while using far fewer gate types.
"""

from repro.experiments.fig9 import Figure9Config, run_figure9


def test_bench_figure9(run_once, bench_decomposer):
    config = Figure9Config.quick()
    result = run_once(run_figure9, config, bench_decomposer)
    print()
    print(result.format_table())

    for study in result.studies():
        assert set(study.per_set) == set(config.instruction_sets)
        for per_set in study.per_set.values():
            assert per_set.metric_values
            assert per_set.mean_two_qubit_count > 0

    # Instruction-count shape: the richest discrete set (R5) needs no more
    # hardware gates than a typical single-type set.  (It can exceed the
    # *best* single-type count on a given circuit because noise adaptivity
    # may trade an extra gate for a higher-fidelity gate type.)
    for study in result.studies():
        single_counts = [
            study.per_set[name].mean_two_qubit_count
            for name in study.per_set
            if name.startswith("S")
        ]
        if single_counts:
            average_single = sum(single_counts) / len(single_counts)
            assert study.per_set["R5"].mean_two_qubit_count <= average_single + 1e-9
