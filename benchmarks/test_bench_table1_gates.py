"""Table I benchmark: regenerate the vendor gate-type table and verify its identities."""

from repro.experiments.tables import table1_identities, table1_rows, verify_s_type_equivalences


def test_bench_table1_gate_table(benchmark):
    """Regenerates Table I rows plus the gate-family identities used throughout the paper."""

    def build():
        rows = table1_rows()
        identities = table1_identities()
        equivalences = verify_s_type_equivalences()
        return rows, identities, equivalences

    rows, identities, equivalences = benchmark(build)
    assert len(rows) == 7
    assert all(identities.values())
    assert all(equivalences.values())
