"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced ("quick") scale; the corresponding ``paper_scale()`` configuration
documents the full-size setup.  A session-scoped decomposer is shared so
fidelity profiles are reused across benchmarks, mirroring how the paper's
toolflow caches decompositions across instruction sets.

Machine-readable benchmark records
----------------------------------

Every benchmark session additionally emits ``BENCH_5.json`` (path
overridable via the ``REPRO_BENCH_JSON`` environment variable): one
record per executed benchmark with its wall time, merged with any
existing file so consecutive pytest invocations (CI runs each benchmark
module as its own step) accumulate into a single artifact.  Benchmarks
with an intrinsic baseline comparison -- e.g. the fused-vs-reference
kernel benchmark -- attach their measured speedup through the
``bench_json_record`` fixture.  CI uploads the file as a build artifact
so future PRs can diff per-benchmark wall times and speedups against
earlier runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict

import pytest

from repro.core.decomposer import NuOpDecomposer

BENCH_JSON_ENV_VAR = "REPRO_BENCH_JSON"
"""Environment variable overriding where the benchmark records land."""

BENCH_JSON_DEFAULT = "BENCH_5.json"
"""Default record file (cwd-relative), named after the PR that started
the benchmark trajectory; kept stable so CI artifacts line up."""

BENCH_JSON_SCHEMA = 1

_BENCH_RECORDS: Dict[str, Dict[str, object]] = {}


@pytest.fixture(scope="session")
def bench_decomposer() -> NuOpDecomposer:
    """Session-wide decomposer with a warm profile cache."""
    return NuOpDecomposer(seed=21)


@pytest.fixture()
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture()
def bench_json_record(request):
    """Attach structured fields (speedup, baseline timings) to this
    benchmark's ``BENCH_5.json`` record."""

    def _record(**fields: object) -> None:
        _BENCH_RECORDS.setdefault(request.node.nodeid, {}).update(fields)

    return _record


def pytest_runtest_logreport(report):
    """Record the wall time of every benchmark that ran to completion."""
    if report.when == "call" and report.passed:
        _BENCH_RECORDS.setdefault(report.nodeid, {})["wall_s"] = round(
            report.duration, 4
        )


_BASELINE_FIELDS = ("baseline_s", "reference_s", "sequential_s", "serial_s")
"""Recognised baseline-timing fields, in lookup order."""

_MEASURED_FIELDS = ("batched_s", "fused_s", "optimized_s", "measured_s", "warm_wall_s")
"""Recognised measured-timing fields, in lookup order."""


def _derive_speedups(records: Dict[str, Dict[str, object]]) -> None:
    """Fill in ``speedup`` for every record that reports a baseline.

    A benchmark that records a baseline timing (``baseline_s`` /
    ``reference_s`` / ...) next to a measured timing (``batched_s`` /
    ``fused_s`` / ...) gets ``speedup = baseline / measured`` derived
    here, so the JSON artifact is uniformly diffable across PRs even when
    the benchmark itself only recorded raw timings.  Records that already
    attached an explicit ``speedup`` are left untouched.
    """
    for fields in records.values():
        if "speedup" in fields:
            continue
        baseline = next(
            (fields[key] for key in _BASELINE_FIELDS if key in fields), None
        )
        measured = next(
            (fields[key] for key in _MEASURED_FIELDS if key in fields), None
        )
        try:
            if baseline is not None and measured is not None and float(measured) > 0:
                fields["speedup"] = round(float(baseline) / float(measured), 2)
        except (TypeError, ValueError):
            continue


def pytest_sessionfinish(session, exitstatus):
    """Merge this session's records into the benchmark JSON file."""
    if not _BENCH_RECORDS:
        return
    path = Path(os.environ.get(BENCH_JSON_ENV_VAR, "") or BENCH_JSON_DEFAULT)
    merged: Dict[str, Dict[str, object]] = {}
    try:
        existing = json.loads(path.read_text())
        if existing.get("schema") == BENCH_JSON_SCHEMA:
            merged = {
                record["name"]: {k: v for k, v in record.items() if k != "name"}
                for record in existing.get("benchmarks", [])
            }
    except (OSError, ValueError, TypeError, KeyError, AttributeError):
        merged = {}
    for name, fields in _BENCH_RECORDS.items():
        merged.setdefault(name, {}).update(fields)
    _derive_speedups(merged)
    payload = {
        "schema": BENCH_JSON_SCHEMA,
        "benchmarks": [
            {"name": name, **fields} for name, fields in sorted(merged.items())
        ],
    }
    try:
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    except OSError:  # read-only checkout: records are best-effort
        pass
