"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
reduced ("quick") scale; the corresponding ``paper_scale()`` configuration
documents the full-size setup.  A session-scoped decomposer is shared so
fidelity profiles are reused across benchmarks, mirroring how the paper's
toolflow caches decompositions across instruction sets.
"""

from __future__ import annotations

import pytest

from repro.core.decomposer import NuOpDecomposer


@pytest.fixture(scope="session")
def bench_decomposer() -> NuOpDecomposer:
    """Session-wide decomposer with a warm profile cache."""
    return NuOpDecomposer(seed=21)


@pytest.fixture()
def run_once(benchmark):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
