"""Tabulation smoke benchmark: Weyl-chamber lookup vs per-target BFGS.

The tabulated path answers ``decompose_for_threshold`` by nearest-grid
lookup plus a 1q-only polish instead of a fresh multi-restart BFGS per
layer count.  This benchmark times both paths over a batch of random
SU(4) targets into CZ (the profile cache is cleared per target, so each
query pays its true cost) and asserts the contract that makes the
trade worthwhile:

1. warm tabulated synthesis is at least 5x faster than the classic
   optimiser in aggregate;
2. it selects the same layer count and loses at most 1e-3 of
   decomposition fidelity on every target;
3. reloading the persisted table from the ``decomp`` disk namespace is
   far cheaper than building it.

Records ``baseline_s`` / ``measured_s`` (the conftest derives
``speedup``) plus the one-time build and reload times in the
``BENCH_9.json`` artifact.
"""

from __future__ import annotations

import time

import numpy as np

from repro.caching.disk import (
    configure_disk_cache,
    get_global_disk_cache,
    reset_disk_cache_configuration,
)
from repro.circuits.gate import named_gate
from repro.compiler.tabulation import (
    TabulationConfig,
    clear_table_cache,
    table_for,
)
from repro.core.decomposer import NuOpDecomposer, clear_profile_cache
from repro.gates.unitary import random_su4

NUM_TARGETS = 8
RESOLUTION = 5  # the default grid: 45 chamber points


def test_tabulated_lookup_vs_classic(tmp_path, bench_json_record):
    cz = named_gate("cz")
    config = TabulationConfig(resolution=RESOLUTION)
    tabulated = NuOpDecomposer(seed=21, tabulation=config)
    classic = NuOpDecomposer(seed=21)
    configure_disk_cache(str(tmp_path))
    clear_table_cache()
    clear_profile_cache()
    try:
        started = time.perf_counter()
        table = table_for(tabulated, cz, None, config)  # cold: build + persist
        build_s = time.perf_counter() - started
        assert get_global_disk_cache().stats()["decomp_writes"] == 1

        clear_table_cache()
        started = time.perf_counter()
        reloaded = table_for(tabulated, cz, None, config)  # warm: disk load
        load_s = time.perf_counter() - started
        assert reloaded.spec == table.spec
        assert get_global_disk_cache().stats()["decomp_hits"] >= 1
        assert load_s < build_s / 10

        rng = np.random.default_rng(0)
        targets = [random_su4(rng) for _ in range(NUM_TARGETS)]
        baseline_s = measured_s = 0.0
        worst_shortfall = 0.0
        for target in targets:
            clear_profile_cache()
            started = time.perf_counter()
            reference = classic.decompose_for_threshold(target, gate=cz)
            baseline_s += time.perf_counter() - started

            clear_profile_cache()
            started = time.perf_counter()
            result = tabulated.decompose_for_threshold(target, gate=cz)
            measured_s += time.perf_counter() - started

            assert result.num_layers == reference.num_layers
            worst_shortfall = max(
                worst_shortfall,
                reference.decomposition_fidelity - result.decomposition_fidelity,
            )

        speedup = baseline_s / measured_s
        print(
            f"\ntabulation: build {build_s:.2f}s, reload {load_s * 1e3:.1f}ms, "
            f"classic {baseline_s:.2f}s vs lookup {measured_s:.2f}s over "
            f"{NUM_TARGETS} targets ({speedup:.1f}x), "
            f"worst F_d shortfall {worst_shortfall:.2e}"
        )
        assert worst_shortfall <= 1e-3
        assert speedup >= 5.0
        bench_json_record(
            baseline_s=round(baseline_s, 4),
            measured_s=round(measured_s, 4),
            tabulate_build_s=round(build_s, 3),
            table_reload_s=round(load_s, 4),
            worst_fidelity_shortfall=float(worst_shortfall),
            num_targets=NUM_TARGETS,
            resolution=RESOLUTION,
        )
    finally:
        reset_disk_cache_configuration()
        clear_table_cache()
        clear_profile_cache()
