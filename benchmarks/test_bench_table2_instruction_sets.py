"""Table II benchmark: regenerate the instruction-set catalogue."""

from repro.experiments.tables import table2_rows


def test_bench_table2_catalogue(benchmark):
    """Regenerates every instruction set of Table II and checks its composition."""
    rows = benchmark(table2_rows)
    by_name = {row.name: row for row in rows}
    # Single-type sets S1-S7, Google sets G1-G7, Rigetti sets R1-R5, 2 continuous.
    assert len(by_name) == 21
    assert by_name["G7"].members[-1] == "SWAP"
    assert by_name["R5"].members[-1] == "SWAP"
    assert by_name["G3"].num_gate_types == 4
    assert by_name["FullXY"].kind == "continuous"
