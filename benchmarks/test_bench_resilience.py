"""Resilience-layer benchmark: inert overhead and chaos-run cost.

Two numbers the resilience PR stakes its acceptance on:

1. **Inert overhead** -- with no fault plan configured, a consult is a
   dictionary miss.  The benchmark times a cold study with the layer
   inert (the default every earlier PR ran under) so the artifact
   records that the fault points and retry wrappers cost nothing
   measurable on the engine's critical path.
2. **Chaos cost** -- the same study under an aggressive fault plan
   (worker failures, backend hiccups, dropped disk writes) completes
   with bit-identical rows; the recorded ``chaos_overhead`` is the
   price of the injected failures plus deterministic backoff, i.e. what
   an operator pays for a chaos drill, not what steady state pays.

The measured wall times and the retry counters land in the benchmark
JSON artifact via ``bench_json_record``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.resilience import (
    RetryPolicy,
    configure_fault_plan,
    fault_stats,
    reset_fault_plan_configuration,
    reset_retry_stats,
    retry_stats,
)

CHAOS_PLAN = "worker.task:fail@2;backend.run:fail@1;disk.write:enospc%0.2;seed=7"


def _study_kwargs(bench_decomposer):
    circuits = [qv_circuit(3, rng=np.random.default_rng(index)) for index in range(2)]
    return dict(
        application="qv",
        circuits=circuits,
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(5, "line", seed=13),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "G3": google_instruction_set("G3"),
        },
        options=SimulationOptions(shots=900, seed=5),
        decomposer=bench_decomposer,
    )


def _rows(study):
    return [
        (name, result.metric_values, result.two_qubit_counts)
        for name, result in study.per_set.items()
    ]


def test_resilience_inert_vs_chaos(
    tmp_path, run_once, bench_json_record, bench_decomposer
):
    kwargs = _study_kwargs(bench_decomposer)
    import time

    reset_fault_plan_configuration()
    reset_retry_stats()
    clear_experiment_caches()
    # Inert cold run under pytest-benchmark timing: the layer's default
    # cost on the critical path (fault points consulted, zero plans).
    inert = run_once(lambda: run_study(**kwargs, workers=1))
    assert inert.resilience.get("retries", 0) == 0

    # Chaos cold run (timed manually: pytest-benchmark owns the fixture's
    # single measured run): every injected failure must be recovered and
    # the rows must stay bit-identical.
    clear_experiment_caches()
    configure_fault_plan(CHAOS_PLAN)
    started = time.perf_counter()
    with pytest.warns(RuntimeWarning, match="resilience:"):
        chaos = run_study(
            **kwargs,
            workers=1,
            cache_dir=str(tmp_path / "chaos-cache"),
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.001, seed=7),
        )
    chaos_seconds = time.perf_counter() - started

    assert _rows(chaos) == _rows(inert)
    stats = retry_stats()
    assert stats["recoveries"] >= 1
    bench_json_record(
        chaos_wall_s=round(chaos_seconds, 4),
        retries=stats["retries"],
        recoveries=stats["recoveries"],
        injected=sum(
            count
            for kinds in fault_stats()["injected"].values()
            for count in kinds.values()
        ),
    )
    reset_fault_plan_configuration()
    reset_retry_stats()
    clear_experiment_caches()
