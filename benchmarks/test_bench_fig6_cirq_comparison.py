"""Figure 6 benchmark: NuOp vs the analytic (Cirq-like) baseline.

Paper result: NuOp-100% uses ~1.26x fewer hardware gates than the analytic
baseline on average, and 1.3-2.3x fewer with approximation; the baseline
cannot target sqrt(iSWAP) for generic QV unitaries at all.
"""

from repro.experiments.fig6 import Figure6Config, run_figure6


def test_bench_figure6(run_once, bench_decomposer):
    config = Figure6Config.quick()
    result = run_once(run_figure6, config, bench_decomposer)
    print()
    print(result.format_table())

    # Shape checks mirroring the paper's claims.
    for target in ("cz", "syc", "iswap"):
        assert result.mean_count("NuOp-100%", target) <= result.mean_count("Cirq", target) + 1e-9
    # The analytic baseline cannot target sqrt(iSWAP) for QV unitaries (Cirq limitation).
    assert result.mean_count("Cirq", "sqrt_iswap", application="qv") is None
    assert result.reduction_vs_baseline("NuOp-100%") >= 1.0
    assert result.reduction_vs_baseline("NuOp-95%") >= result.reduction_vs_baseline("NuOp-99.9%") - 1e-9
