"""Experiment-engine benchmark: warm-cache study vs the legacy serial loop.

Runs one Figure-9-style 4-qubit instruction-set study three ways:

1. the legacy serial reference implementation (no compilation cache),
2. the engine with ``workers=1`` on a warm compilation cache,
3. the engine with ``workers=4`` on a warm compilation cache,

asserts all three produce bit-identical rows, and prints the timings and
cache counters.  On a multi-core host the worker pool additionally
overlaps simulations; on any host the warm compilation cache and the
shared ideal-distribution cache dominate the win.
"""

from __future__ import annotations

import time

import numpy as np

from repro.applications import qv_suite
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import global_compilation_cache
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import (
    SimulationOptions,
    run_instruction_set_study_reference,
)
from repro.metrics.hop import heavy_output_probability


def _rows(study):
    return [
        (name, result.metric_values, result.two_qubit_counts, result.swap_counts)
        for name, result in study.per_set.items()
    ]


def test_bench_engine_warm_cache_beats_serial_baseline(bench_decomposer):
    kwargs = dict(
        application="qv",
        circuits=qv_suite(4, 2, seed=4),
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(6, "line", seed=19),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "S3": single_gate_set("S3", vendor="google"),
            "G3": google_instruction_set("G3"),
            "G7": google_instruction_set("G7"),
        },
        options=SimulationOptions(shots=2000, seed=6),
        decomposer=bench_decomposer,
    )

    start = time.perf_counter()
    reference = run_instruction_set_study_reference(**kwargs)
    t_reference = time.perf_counter() - start

    clear_experiment_caches()
    start = time.perf_counter()
    cold = run_study(**kwargs, workers=1)
    t_cold = time.perf_counter() - start

    start = time.perf_counter()
    warm_serial = run_study(**kwargs, workers=1)
    t_warm_serial = time.perf_counter() - start

    start = time.perf_counter()
    warm_parallel = run_study(**kwargs, workers=4)
    t_warm_parallel = time.perf_counter() - start

    stats = global_compilation_cache().stats()
    print()
    print(
        f"engine bench: reference={t_reference:.2f}s engine_cold={t_cold:.2f}s "
        f"engine_warm_w1={t_warm_serial:.2f}s engine_warm_w4={t_warm_parallel:.2f}s "
        f"cache={stats}"
    )

    assert _rows(cold) == _rows(reference)
    assert _rows(warm_serial) == _rows(reference)
    assert _rows(warm_parallel) == _rows(reference)
    assert stats["hits"] > 0
    # Warm-cache engine must clearly beat the uncached serial baseline.
    assert t_warm_serial < t_reference
