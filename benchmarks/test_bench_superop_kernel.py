"""Fused-superoperator kernel microbenchmark (CI smoke).

Two measurements on the cold simulation path the caches cannot help:

1. **Kernel level** -- the fused density-matrix kernel
   (:func:`repro.simulators.superop.apply_superop_program`, one
   contraction per fused channel group) against the pinned reference
   replay (one contraction per Kraus operator) on a 6-qubit QV program.
   Asserts **>= 2x** speedup and **<= 1e-10** max-abs deviation of the
   final probabilities; on this container the observed ratio is ~40x
   (a 2q gate + 16-operator depolarizing channel + two thermal channels
   costs ~40 tensordot/transpose pairs on the reference kernel and one
   on the fused kernel).

2. **Study level** -- a fig9-style instruction-set study run end-to-end
   under ``REPRO_SIM_KERNEL=fused`` vs ``reference`` with a warm
   compilation cache and cold simulation caches (the kernels never share
   simulation-cache entries, so each run simulates for real).  Asserts
   the fused study is faster and its report agrees with the reference
   run to 1e-10 on every metric column.

Speedups land in ``BENCH_5.json`` via the ``bench_json_record`` fixture.
"""

from __future__ import annotations

import time

import numpy as np

from repro.applications import qv_circuit, qv_suite
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.backend import SIM_KERNEL_ENV_VAR
from repro.simulators.density_matrix import apply_program_to_density_matrix
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import build_noise_program
from repro.simulators.superop import apply_superop_program, lower_noise_program


def _best_of(function, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_superop_kernel_speedup(bench_json_record):
    num_qubits = 6
    circuit = qv_circuit(num_qubits, rng=np.random.default_rng(42))
    model = NoiseModel.uniform(
        num_qubits, two_qubit_error=0.01, single_qubit_error=0.001
    )
    program = build_noise_program(circuit, model)

    dim = 2**num_qubits
    rho = np.zeros((dim, dim), dtype=complex)
    rho[0, 0] = 1.0

    reference_s = _best_of(lambda: apply_program_to_density_matrix(program, rho))

    lowering_start = time.perf_counter()
    lowered = lower_noise_program(program)
    lowering_s = time.perf_counter() - lowering_start
    fused_s = _best_of(lambda: apply_superop_program(lowered, rho))

    reference_rho = apply_program_to_density_matrix(program, rho)
    fused_rho = apply_superop_program(lowered, rho)
    deviation = float(
        np.abs(
            np.real(np.diagonal(fused_rho)) - np.real(np.diagonal(reference_rho))
        ).max()
    )

    speedup = reference_s / fused_s
    print()
    print(
        f"superop kernel bench (6q QV): reference={reference_s * 1e3:.1f}ms "
        f"fused={fused_s * 1e3:.1f}ms (speedup {speedup:.1f}x, "
        f"one-time lowering {lowering_s * 1e3:.1f}ms)"
    )
    print(
        f"  fused groups={lowered.num_groups()} vs reference "
        f"applications={lowered.source_applications}, "
        f"probability deviation={deviation:.2e}"
    )
    bench_json_record(
        speedup=round(speedup, 2),
        reference_s=round(reference_s, 6),
        fused_s=round(fused_s, 6),
        lowering_s=round(lowering_s, 6),
        max_abs_deviation=deviation,
    )

    assert deviation <= 1e-10
    assert lowered.num_groups() < lowered.source_applications / 10
    assert speedup >= 2.0, f"fused kernel only {speedup:.2f}x faster than reference"


def test_bench_fused_study_end_to_end(bench_decomposer, bench_json_record, monkeypatch):
    kwargs = dict(
        application="qv",
        circuits=qv_suite(5, 3, seed=9),
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(7, "line", seed=19),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "G3": google_instruction_set("G3"),
        },
        decomposer=bench_decomposer,
        workers=1,
    )

    # Warm the compilation tier once so both timed runs measure the
    # simulate stage; the kernels never share simulation-cache entries
    # (distinct backend versions), so each timed run simulates for real.
    clear_experiment_caches()
    run_study(**kwargs, options=SimulationOptions(shots=2000, seed=6))

    timed_options = SimulationOptions(shots=2001, seed=6)
    monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
    start = time.perf_counter()
    reference_study = run_study(**kwargs, options=timed_options)
    reference_s = time.perf_counter() - start

    monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
    start = time.perf_counter()
    fused_study = run_study(**kwargs, options=timed_options)
    fused_s = time.perf_counter() - start

    speedup = reference_s / fused_s
    print()
    print(
        f"fused study bench (5q QV x3, 2 sets, warm compile/cold sim): "
        f"reference={reference_s:.2f}s fused={fused_s:.2f}s (speedup {speedup:.1f}x)"
    )
    bench_json_record(
        speedup=round(speedup, 2),
        reference_s=round(reference_s, 4),
        fused_s=round(fused_s, 4),
    )

    for name, reference_result in reference_study.per_set.items():
        np.testing.assert_allclose(
            fused_study.per_set[name].metric_values,
            reference_result.metric_values,
            atol=1e-10,
            rtol=0,
        )
    assert fused_s < reference_s, (
        f"fused study ({fused_s:.2f}s) not faster than reference ({reference_s:.2f}s)"
    )
