"""Quickstart: decompose an application operation and compile a circuit.

This walks through the two levels of the public API:

1. gate level -- use :class:`NuOpDecomposer` to decompose a single
   application two-qubit unitary into a hardware gate type (the paper's
   Figure 2 examples), and
2. circuit level -- use :func:`compile_circuit` to map, route and
   decompose a full QAOA circuit onto the Google Sycamore device model for
   two candidate instruction sets, then simulate both with realistic noise
   and compare their reliability.

Run with ``python examples/quickstart.py``.
"""

import numpy as np

from repro.applications.qaoa import qaoa_maxcut_circuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import compile_circuit
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import SimulationOptions, simulate_compiled
from repro.gates.standard import SYC
from repro.gates.unitary import random_su4
from repro.circuits.gate import named_gate
from repro.metrics.xeb import cross_entropy_difference
from repro.simulators.statevector import ideal_probabilities


def decompose_one_unitary() -> None:
    """Decompose a random SU(4) unitary into Sycamore's SYC gate."""
    print("=" * 72)
    print("1. Gate-level decomposition with NuOp")
    print("=" * 72)

    rng = np.random.default_rng(2021)
    target = random_su4(rng)
    decomposer = NuOpDecomposer()

    exact = decomposer.decompose_exact(target, gate=named_gate("syc"))
    print(f"target: random SU(4) unitary (a Quantum-Volume two-qubit block)")
    print(f"hardware gate: SYC = fSim(pi/2, pi/6), matrix shape {SYC.shape}")
    print(f"exact decomposition: {exact.num_layers} SYC gates, "
          f"F_d = {exact.decomposition_fidelity:.6f}")

    # The approximate (Eq. 2) mode trades decomposition accuracy against
    # hardware error: with a 95%-fidelity SYC gate it often prefers fewer
    # layers even though the unitary is no longer matched exactly.
    approx = decomposer.decompose_approximate(target, gate=named_gate("syc"), gate_fidelity=0.95)
    print(f"approximate decomposition at 95% gate fidelity: {approx.num_layers} SYC gates, "
          f"F_d = {approx.decomposition_fidelity:.4f}, "
          f"F_u = F_d * F_h = {approx.overall_fidelity:.4f}")
    print()


def compile_and_simulate() -> None:
    """Compile a QAOA circuit for two instruction sets and compare reliability."""
    print("=" * 72)
    print("2. Circuit-level compilation on the Sycamore device model")
    print("=" * 72)

    circuit = qaoa_maxcut_circuit(5, rng=np.random.default_rng(7))
    device = sycamore_device(seed=54)
    decomposer = NuOpDecomposer()
    ideal = ideal_probabilities(circuit)

    options = SimulationOptions(shots=4000, seed=11)
    for instruction_set in (single_gate_set("S1"), google_instruction_set("G7")):
        compiled = compile_circuit(circuit, device, instruction_set, decomposer=decomposer)
        measured = simulate_compiled(compiled, device, options)
        xed = cross_entropy_difference(measured, ideal)
        print(f"instruction set {instruction_set.name:>4}: "
              f"{compiled.two_qubit_gate_count:3d} two-qubit gates, "
              f"{compiled.num_swaps} routing SWAPs, "
              f"gate types used: {compiled.gate_type_usage}, "
              f"XED = {xed:.3f}")

    print()
    print("The multi-type set (G7) expresses the same circuit with fewer")
    print("hardware gates and picks the best-calibrated gate type on every")
    print("edge, which is exactly the effect Figures 9 and 10 quantify.")


if __name__ == "__main__":
    decompose_one_unitary()
    compile_and_simulate()
