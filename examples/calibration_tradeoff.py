"""Calibration-overhead analysis: the paper's Figure 11 and Section IX model.

Shows, without any circuit simulation, how the calibration cost of an
instruction set scales with the number of exposed two-qubit gate types and
with device size, and why a 4-8 type set is two orders of magnitude cheaper
to keep calibrated than a continuous gate family.

Run with ``python examples/calibration_tradeoff.py``.
"""

from repro.calibration.model import (
    CalibrationModel,
    calibration_savings_factor,
    continuous_family_equivalent_types,
)
from repro.calibration.tradeoff import diminishing_returns_size, tradeoff_curve
from repro.experiments.fig11 import Figure11aConfig, run_figure11a


def circuit_scaling() -> None:
    """Figure 11a: calibration circuits vs number of gate types and device size."""
    print("=" * 72)
    print("Figure 11a: calibration circuit counts")
    print("=" * 72)
    result = run_figure11a(Figure11aConfig())
    print(result.format_table())
    print()


def time_and_savings() -> None:
    """Wall-clock calibration time and the savings of a discrete set."""
    print("=" * 72)
    print("Calibration time model (Section IX)")
    print("=" * 72)
    model = CalibrationModel()
    for num_types in (1, 2, 4, 8):
        hours = model.calibration_time_hours(num_types)
        print(f"{num_types} gate types: {hours:5.1f} hours of daily calibration")

    continuous = continuous_family_equivalent_types()
    print(f"\ncontinuous fSim family ~ {continuous} discrete types "
          f"(19 x 19 parameter grid; Google calibrated 525 in practice)")
    for proposed in (4, 8):
        factor = calibration_savings_factor(model, proposed)
        print(f"proposed {proposed}-type set is {factor:.0f}x cheaper to calibrate")
    print()


def reliability_tradeoff() -> None:
    """Figure 11b style tradeoff built from externally supplied reliabilities.

    Here the reliabilities are the paper's own Figure 10 numbers; running
    ``examples/instruction_set_study.py`` produces measured equivalents.
    """
    print("=" * 72)
    print("Figure 11b: calibration time vs reliability improvement")
    print("=" * 72)

    # Approximate Figure 10 reliabilities (HOP for QV on Sycamore).
    reliability_by_size = {
        2: {"Google-QV": 0.66},
        4: {"Google-QV": 0.67},
        6: {"Google-QV": 0.67},
        8: {"Google-QV": 0.71},
    }
    baseline = {"Google-QV": 0.65}

    points = tradeoff_curve(reliability_by_size, baseline)
    print(f"{'#types':>7} | {'hours':>7} | {'circuits':>12} | QV improvement")
    print("-" * 54)
    for point in points:
        improvement = point.reliability_improvement["Google-QV"]
        print(f"{point.num_gate_types:>7} | {point.calibration_hours:7.1f} | "
              f"{point.calibration_circuits:12.3g} | {improvement:+.1%}")

    sweet_spot = diminishing_returns_size(points, "Google-QV", tolerance=0.02)
    print(f"\ndiminishing returns beyond ~{sweet_spot} gate types; the paper")
    print("recommends 4-8 expressive types plus a hardware SWAP.")


if __name__ == "__main__":
    circuit_scaling()
    time_and_savings()
    reliability_tradeoff()
