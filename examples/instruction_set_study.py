"""Instruction-set design study: a scaled-down Figure 9 / Figure 10 run.

Compares single-gate-type instruction sets against multi-type sets (and the
fully continuous family) on both device models:

* Rigetti Aspen-8 -- 3-qubit QV circuits scored by heavy-output
  probability (Figure 9a),
* Google Sycamore -- 4-qubit QAOA circuits scored by cross-entropy
  difference (Figure 10b),

using the same compile -> noisy-simulate -> score pipeline as the paper.
The ensembles are deliberately small so the example finishes in about a
minute; pass ``--circuits`` to run closer to paper scale (100 circuits).

Run with ``python examples/instruction_set_study.py [--circuits N]``.
"""

import argparse

from repro.applications.qaoa import qaoa_suite
from repro.applications.qv import qv_suite
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import (
    full_fsim_set,
    full_xy_set,
    google_instruction_set,
    rigetti_instruction_set,
    single_gate_set,
)
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import SimulationOptions, run_instruction_set_study
from repro.metrics.hop import heavy_output_probability
from repro.metrics.xeb import cross_entropy_difference


def rigetti_study(num_circuits: int) -> None:
    """Figure 9a style study: 3-qubit QV on Aspen-8."""
    instruction_sets = {
        "S3": single_gate_set("S3", vendor="rigetti"),
        "S4": single_gate_set("S4", vendor="rigetti"),
        "R1": rigetti_instruction_set("R1"),
        "R5": rigetti_instruction_set("R5"),
        "FullXY": full_xy_set(),
    }
    study = run_instruction_set_study(
        application="qv",
        circuits=qv_suite(3, num_circuits, seed=9),
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: aspen8_device(seed=8),
        instruction_sets=instruction_sets,
        decomposer=NuOpDecomposer(),
        options=SimulationOptions(shots=4000, seed=9),
    )
    print(study.format_table())
    print(f"best instruction set: {study.best_set()}")
    print()


def google_study(num_circuits: int) -> None:
    """Figure 10b style study: 4-qubit QAOA on Sycamore."""
    instruction_sets = {
        "S1": single_gate_set("S1"),
        "S2": single_gate_set("S2"),
        "G3": google_instruction_set("G3"),
        "G7": google_instruction_set("G7"),
        "FullfSim": full_fsim_set(),
    }
    study = run_instruction_set_study(
        application="qaoa",
        circuits=qaoa_suite(4, num_circuits, seed=10),
        metric_name="XED",
        metric=cross_entropy_difference,
        device_factory=lambda: sycamore_device(seed=54),
        instruction_sets=instruction_sets,
        decomposer=NuOpDecomposer(),
        options=SimulationOptions(shots=4000, seed=10),
    )
    print(study.format_table())
    print(f"best instruction set: {study.best_set()}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--circuits", type=int, default=4,
                        help="random circuits per application (paper uses 100)")
    args = parser.parse_args()

    print("Rigetti Aspen-8, 3-qubit Quantum Volume (Figure 9a)")
    print("-" * 60)
    rigetti_study(args.circuits)

    print("Google Sycamore, 4-qubit QAOA (Figure 10b)")
    print("-" * 60)
    google_study(args.circuits)

    print("Multi-type sets (R5, G7) approach the continuous-family reliability")
    print("with only a handful of calibrated gate types -- the paper's headline.")


if __name__ == "__main__":
    main()
