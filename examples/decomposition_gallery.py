"""Decomposition gallery: the paper's Figure 2 and Figure 5 walk-through.

Reproduces, with the library's own NuOp implementation:

* Figure 2 -- exact decomposition of a Quantum-Volume SU(4) unitary and a
  QAOA ``exp(-i beta ZZ)`` unitary into CZ gates (Rigetti) and into
  sqrt(iSWAP) gates (Google), showing that the most expressive gate type
  depends on the application;
* Figure 5 -- noise-adaptive approximate decomposition: on a pair of
  Aspen-8 edges with different calibrated fidelities, NuOp picks CZ on one
  edge and XY(pi) on the other, and accepts a slightly inexact
  decomposition when that increases the overall fidelity F_u = F_d * F_h.

Run with ``python examples/decomposition_gallery.py``.
"""

import numpy as np

from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import rigetti_instruction_set
from repro.core.noise_adaptive import best_gate_type_per_edge, decompose_with_instruction_set
from repro.circuits.gate import named_gate
from repro.gates.parametric import rzz
from repro.gates.unitary import random_su4


def figure2_exact_decompositions() -> None:
    """Exact decompositions of QV and QAOA unitaries into CZ and sqrt(iSWAP)."""
    print("=" * 72)
    print("Figure 2: exact decompositions (decomposition error ~ 1e-7)")
    print("=" * 72)

    decomposer = NuOpDecomposer()
    qv_unitary = random_su4(np.random.default_rng(32))
    qaoa_unitary = rzz(0.0606 / 2.0)  # the e^{-0.0303 i ZZ} unitary of Figure 2b

    targets = {"CZ": named_gate("cz"), "sqrt(iSWAP)": named_gate("sqrt_iswap")}
    for name, unitary in (("QV SU(4)", qv_unitary), ("QAOA exp(-i b ZZ)", qaoa_unitary)):
        for gate_name, gate in targets.items():
            decomposition = decomposer.decompose_exact(unitary, gate=gate)
            print(f"{name:>18} -> {gate_name:<12}: {decomposition.num_layers} gates, "
                  f"F_d = {decomposition.decomposition_fidelity:.7f}")
        print()

    print("A generic QV unitary needs 3 hardware gates in either basis")
    print("(Figure 2c/2e).  For the small-angle ZZ interaction NuOp finds")
    print("2-gate implementations in both bases; the paper's Figure 2f shows")
    print("a 3-gate sqrt(iSWAP) circuit, which numerical optimisation beats.")
    print()


def figure5_noise_adaptive_choice() -> None:
    """Noise-adaptive gate-type selection on two Aspen-8 style edges."""
    print("=" * 72)
    print("Figure 5: noise-adaptive approximate decomposition")
    print("=" * 72)

    decomposer = NuOpDecomposer()
    instruction_set = rigetti_instruction_set("R1")  # {CZ, XY(pi)}
    cz_key, xy_key = instruction_set.type_keys()
    target = random_su4(np.random.default_rng(5))

    # Measured Figure 3 fidelities: on edge (2, 3) CZ is the better gate,
    # on edge (3, 4) XY(pi) is the better gate.
    per_edge = {
        (2, 3): {cz_key: 0.94, xy_key: 0.70},
        (3, 4): {cz_key: 0.94, xy_key: 0.97},
    }
    choices = best_gate_type_per_edge(decomposer, target, instruction_set, per_edge)
    for edge, label in choices.items():
        fidelities = per_edge[edge]
        print(f"edge {edge}: calibrated fidelities CZ={fidelities[cz_key]:.2f}, "
              f"XY(pi)={fidelities[xy_key]:.2f}  ->  NuOp chooses {label}")
    print()

    # Approximation: on the low-fidelity edge an inexact two-gate
    # decomposition beats the exact three-gate one.
    exact = decompose_with_instruction_set(
        decomposer, target, instruction_set,
        edge_fidelities=per_edge[(2, 3)], approximate=False,
    )
    approx = decompose_with_instruction_set(
        decomposer, target, instruction_set,
        edge_fidelities=per_edge[(2, 3)], approximate=True,
    )
    print(f"exact decomposition:       {exact.num_layers} gates, "
          f"F_d = {exact.decomposition_fidelity:.4f}, F_u = {exact.overall_fidelity:.4f}")
    print(f"approximate decomposition: {approx.num_layers} gates, "
          f"F_d = {approx.decomposition_fidelity:.4f}, F_u = {approx.overall_fidelity:.4f}")
    print()
    print("Approximation wins whenever the hardware error saved by dropping a")
    print("gate exceeds the decomposition error introduced (Section V.B).")


if __name__ == "__main__":
    figure2_exact_decompositions()
    figure5_noise_adaptive_choice()
