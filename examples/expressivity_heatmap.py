"""Expressivity heatmaps over the fSim parameter space (the paper's Figure 8).

For each application workload (QV, QAOA, SWAP by default) this sweeps a
grid of fSim(theta, phi) gate types, decomposes an ensemble of application
two-qubit unitaries into each candidate type with NuOp's exact mode, and
prints the average hardware gate count as an ASCII heatmap.  The minima of
these heatmaps are precisely the S1-S7 gate types the paper selects for its
proposed instruction sets (Table II).

The default grid is coarse (5 x 5) so the example finishes in a couple of
minutes; ``--theta-points/--phi-points/--unitaries`` scale it up to the
paper's 19 x 19 x 1000 configuration.

Run with ``python examples/expressivity_heatmap.py [--grid N]``.
"""

import argparse

from repro.core.decomposer import NuOpDecomposer
from repro.experiments.fig8 import Figure8Config, run_figure8


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--theta-points", type=int, default=5)
    parser.add_argument("--phi-points", type=int, default=5)
    parser.add_argument("--unitaries", type=int, default=4,
                        help="unitaries per application (paper uses 1000 for QV/QAOA)")
    parser.add_argument("--applications", nargs="+",
                        default=["qv", "qaoa", "swap"],
                        choices=["qv", "qaoa", "qft", "fh", "swap"])
    args = parser.parse_args()

    config = Figure8Config(
        theta_points=args.theta_points,
        phi_points=args.phi_points,
        unitaries_per_application=args.unitaries,
        applications=args.applications,
    )
    result = run_figure8(config, decomposer=NuOpDecomposer())

    for application in args.applications:
        print(result.format_table(application))
        theta, phi, count = result.best_gate(application)
        print(f"most expressive gate for {application}: "
              f"fSim({theta:.2f}, {phi:.2f}) with {count:.2f} gates per operation")
        print()

    print("Gate counts at the paper's S1-S7 gate types (Table II candidates):")
    for application in args.applications:
        counts = result.s_type_counts(application)
        rendered = ", ".join(f"{label}={value:.2f}" for label, value in counts.items())
        print(f"  {application:>5}: {rendered}")


if __name__ == "__main__":
    main()
