"""PassManager architecture: pass correctness and pipeline equivalence.

Three families of properties:

* **Per-pass equivalence** -- every individual optimisation pass
  (cancellation, single-qubit merge, Euler rewriting, two-qubit fusion)
  preserves the circuit unitary up to global phase on randomized circuits.
* **Pipeline == monolith** -- the ``default`` pipeline reproduces the
  retained pre-PassManager monolith (:func:`compile_circuit_reference`)
  bit-for-bit: identical operations, mappings, statistics and device
  calibration RNG consumption.
* **Registry semantics** -- named pipelines resolve, override options,
  fingerprint by content and honour the legacy ``merge_single_qubit``
  toggle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gate import u3_gate, unitary_gate
from repro.compiler.cancellation import (
    cancel_adjacent_inverses,
    merge_adjacent_two_qubit_gates,
)
from repro.compiler.euler import rewrite_single_qubit_gates
from repro.compiler.manager import (
    EulerMergePass,
    PassContext,
    PipelineConfig,
    RoutingPass,
    aggregate_pass_stats,
    available_pipelines,
    build_pass,
    merge_aggregated_pass_stats,
    register_pipeline,
    resolve_pipeline,
)
from repro.compiler.onequbit import merge_single_qubit_gates
from repro.core.instruction_sets import (
    full_fsim_set,
    google_instruction_set,
    rigetti_instruction_set,
)
from repro.core.pipeline import compile_circuit, compile_circuit_reference
from repro.devices.synthetic import synthetic_device
from repro.gates.unitary import allclose_up_to_global_phase, random_su4


def _random_circuit(rng: np.random.Generator, num_qubits: int = 3, depth: int = 14) -> QuantumCircuit:
    """Random circuit mixing 1Q rotations, fixed 2Q gates and inverse pairs.

    Deliberately includes back-to-back self-inverse pairs and runs of
    single-qubit gates so the cleanup passes have real work to do.
    """
    circuit = QuantumCircuit(num_qubits, name="random")
    for _ in range(depth):
        roll = rng.integers(0, 5)
        if roll == 0:
            qubit = int(rng.integers(0, num_qubits))
            circuit.append(u3_gate(*rng.uniform(-np.pi, np.pi, size=3)), [qubit])
        elif roll == 1:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cz(int(a), int(b))
            if rng.integers(0, 2):  # adjacent self-inverse pair
                circuit.cz(int(a), int(b))
        elif roll == 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.cx(int(a), int(b))
        elif roll == 3:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            circuit.append(unitary_gate(random_su4(rng), name="su4"), [int(a), int(b)])
        else:
            qubit = int(rng.integers(0, num_qubits))
            for _ in range(int(rng.integers(2, 4))):  # run of 1Q gates
                circuit.append(u3_gate(*rng.uniform(-np.pi, np.pi, size=3)), [qubit])
    return circuit


def _assert_equivalent(original: QuantumCircuit, transformed: QuantumCircuit) -> None:
    assert allclose_up_to_global_phase(
        transformed.to_unitary(), original.to_unitary(), atol=1e-8
    )


class TestPassEquivalence:
    """Each optimisation pass preserves the unitary up to global phase."""

    @pytest.mark.parametrize("seed", range(6))
    def test_cancellation(self, seed):
        circuit = _random_circuit(np.random.default_rng(seed))
        cleaned = cancel_adjacent_inverses(circuit)
        assert len(cleaned) <= len(circuit)
        _assert_equivalent(circuit, cleaned)

    @pytest.mark.parametrize("seed", range(6))
    def test_single_qubit_merge(self, seed):
        circuit = _random_circuit(np.random.default_rng(10 + seed))
        merged = merge_single_qubit_gates(circuit)
        assert merged.num_single_qubit_gates() <= circuit.num_single_qubit_gates()
        _assert_equivalent(circuit, merged)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("basis", ["zyz", "zxz", "u3"])
    def test_euler_merge(self, seed, basis):
        circuit = _random_circuit(np.random.default_rng(20 + seed))
        rewritten = rewrite_single_qubit_gates(circuit, basis=basis)
        _assert_equivalent(circuit, rewritten)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_qubit_fusion(self, seed):
        circuit = _random_circuit(np.random.default_rng(30 + seed))
        fused = merge_adjacent_two_qubit_gates(circuit)
        _assert_equivalent(circuit, fused)

    @pytest.mark.parametrize("seed", range(3))
    def test_pass_composition(self, seed):
        """The full cleanup chain composes without drifting off the unitary."""
        circuit = _random_circuit(np.random.default_rng(40 + seed))
        result = rewrite_single_qubit_gates(
            merge_single_qubit_gates(cancel_adjacent_inverses(circuit)), basis="zxz"
        )
        _assert_equivalent(circuit, result)


def _compiled_bit_identical(a, b) -> None:
    """Assert two CompiledCircuits are bit-identical in every reported field."""
    assert len(a.circuit) == len(b.circuit)
    for left, right in zip(a.circuit, b.circuit):
        assert left.qubits == right.qubits
        assert left.gate.type_key == right.gate.type_key
        assert np.array_equal(left.gate.matrix, right.gate.matrix)
    assert a.physical_qubits == b.physical_qubits
    assert a.initial_mapping == b.initial_mapping
    assert a.final_mapping == b.final_mapping
    assert a.num_swaps == b.num_swaps
    assert a.gate_type_usage == b.gate_type_usage
    assert a.decomposition_fidelities == b.decomposition_fidelities
    assert a.estimated_hardware_fidelity == b.estimated_hardware_fidelity
    assert a.emitted_gate_types == b.emitted_gate_types


class TestDefaultPipelineMatchesMonolith:
    """The acceptance criterion: default pipeline == pre-refactor monolith."""

    @pytest.mark.parametrize(
        "set_factory",
        [
            lambda: google_instruction_set("G3"),
            lambda: rigetti_instruction_set("R1"),
            lambda: full_fsim_set(),
        ],
        ids=["google-G3", "rigetti-R1", "continuous-fsim"],
    )
    def test_bit_identical_including_device_rng(self, set_factory, shared_decomposer):
        circuit = _random_circuit(np.random.default_rng(3), num_qubits=3, depth=8)
        device_reference = synthetic_device(5, "line", seed=13)
        device_pipeline = synthetic_device(5, "line", seed=13)

        reference = compile_circuit_reference(
            circuit, device_reference, set_factory(), decomposer=shared_decomposer
        )
        compiled = compile_circuit(
            circuit, device_pipeline, set_factory(), decomposer=shared_decomposer
        )

        _compiled_bit_identical(reference, compiled)
        # The passes must consume the device calibration RNG exactly as the
        # monolith did -- the property the caches' replay depends on.
        assert (
            device_reference.calibration_fingerprint()
            == device_pipeline.calibration_fingerprint()
        )

    def test_merge_flag_matches_monolith(self, shared_decomposer):
        circuit = _random_circuit(np.random.default_rng(4), num_qubits=3, depth=8)
        device_reference = synthetic_device(5, "line", seed=13)
        device_pipeline = synthetic_device(5, "line", seed=13)
        reference = compile_circuit_reference(
            circuit,
            device_reference,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            merge_single_qubit=False,
        )
        compiled = compile_circuit(
            circuit,
            device_pipeline,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            merge_single_qubit=False,
        )
        _compiled_bit_identical(reference, compiled)


class TestPipelineRegistry:
    def test_known_pipelines_present(self):
        names = set(available_pipelines())
        assert {"default", "exact", "no-merge", "optimized", "no-cancellation"} <= names

    def test_unknown_pipeline_raises(self):
        with pytest.raises(KeyError, match="unknown pipeline"):
            resolve_pipeline("definitely-not-registered")

    def test_unknown_pass_raises(self):
        with pytest.raises(KeyError, match="unknown compiler pass"):
            build_pass("definitely-not-a-pass")

    def test_register_rejects_duplicates_and_bad_specs(self):
        with pytest.raises(ValueError, match="already registered"):
            register_pipeline(PipelineConfig(name="default", passes=("layout",)))
        with pytest.raises(KeyError, match="unknown compiler pass"):
            register_pipeline(PipelineConfig(name="broken", passes=("nope",)))
        assert "broken" not in available_pipelines()

    def test_fingerprint_is_content_addressed(self):
        # Content-equal pipelines share a fingerprint (and cache entries)...
        default = resolve_pipeline("default")
        alias = resolve_pipeline("no-cancellation")
        assert default.fingerprint() == alias.fingerprint()
        # ...different passes or overrides split it.
        assert default.fingerprint() != resolve_pipeline("optimized").fingerprint()
        assert default.fingerprint() != resolve_pipeline("exact").fingerprint()

    def test_exact_pipeline_overrides_approximate(self, shared_decomposer):
        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        device = synthetic_device(4, "line", seed=11)
        compiled = compile_circuit(
            circuit,
            device,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            approximate=True,  # the pipeline override must win
            pipeline="exact",
        )
        assert compiled.pipeline_name == "exact"
        assert all(f > 1.0 - 1e-6 for f in compiled.decomposition_fidelities)

    def test_merge_toggle_drops_pass(self):
        manager = resolve_pipeline("default").build(merge_single_qubit=False)
        assert "merge-1q" not in manager.pass_names()
        assert resolve_pipeline("default").build().pass_names() == [
            "layout",
            "routing",
            "nuop",
            "merge-1q",
        ]

    def test_pass_timings_recorded(self, shared_decomposer):
        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        device = synthetic_device(4, "line", seed=11)
        compiled = compile_circuit(
            circuit, device, google_instruction_set("G3"), decomposer=shared_decomposer
        )
        assert set(compiled.pass_timings) == {"layout", "routing", "nuop", "merge-1q"}
        assert all(duration >= 0.0 for duration in compiled.pass_timings.values())

    def test_scheduled_pipeline_reports_duration(self, shared_decomposer):
        circuit = QuantumCircuit(2, name="bell").h(0).cx(0, 1)
        device = synthetic_device(4, "line", seed=11)
        compiled = compile_circuit(
            circuit,
            device,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            pipeline="scheduled",
        )
        assert compiled.schedule_duration is not None
        assert compiled.schedule_duration > 0.0


class TestPassErrorHandling:
    def test_routing_requires_layout(self):
        device = synthetic_device(4, "line", seed=11)
        context = PassContext(
            circuit=QuantumCircuit(2).cz(0, 1),
            device=device,
            instruction_set=google_instruction_set("G3"),
            decomposer=None,
        )
        with pytest.raises(RuntimeError, match="requires a layout"):
            RoutingPass().run(context)

    def test_euler_pass_rejects_unknown_basis(self):
        with pytest.raises(ValueError, match="basis"):
            EulerMergePass(basis="xyzzy")


class TestDeprecations:
    def test_map_and_route_warns(self):
        from repro.compiler.passes import map_and_route

        device = synthetic_device(4, "line", seed=11)
        device.register_gate_type("cz")
        with pytest.warns(DeprecationWarning, match="map_and_route is deprecated"):
            routed = map_and_route(QuantumCircuit(2).cz(0, 1), device, ["cz"])
        assert routed.circuit.num_two_qubit_gates() == 1

    def test_reference_runner_warns(self, shared_decomposer):
        from repro.core.instruction_sets import single_gate_set
        from repro.experiments.runner import (
            SimulationOptions,
            run_instruction_set_study_reference,
        )
        from repro.metrics.hop import heavy_output_probability

        with pytest.warns(DeprecationWarning, match="ground-truth loop"):
            run_instruction_set_study_reference(
                "qv",
                [QuantumCircuit(2, name="bell").h(0).cx(0, 1)],
                "HOP",
                heavy_output_probability,
                lambda: synthetic_device(4, "line", seed=11),
                {"S3": single_gate_set("S3", vendor="google")},
                decomposer=shared_decomposer,
                options=SimulationOptions(shots=200, seed=3),
            )


class TestPassStatistics:
    """PassManager-recorded rewrite counters (gates removed/added, deltas)."""

    def _compiled(self, shared_decomposer, pipeline="optimized"):
        circuit = qaoa_like = QuantumCircuit(3, name="w")
        qaoa_like.h(0).h(1).h(2).cz(0, 1).cz(1, 2).rx(0.3, 0).rx(0.3, 1).cz(0, 1)
        device = synthetic_device(5, "line", seed=11)
        return compile_circuit(
            circuit,
            device,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            pipeline=pipeline,
        )

    def test_records_follow_execution_order(self, shared_decomposer):
        compiled = self._compiled(shared_decomposer)
        assert [record.pass_name for record in compiled.pass_stats] == [
            "layout",
            "routing",
            "nuop",
            "cancel",
            "merge-1q",
        ]

    def test_snapshots_are_consistent_chains(self, shared_decomposer):
        # Each pass's 'after' snapshot is the next pass's 'before' snapshot,
        # and the last 'after' matches the emitted circuit.
        compiled = self._compiled(shared_decomposer)
        records = compiled.pass_stats
        for previous, current in zip(records, records[1:]):
            assert previous.gates_after == current.gates_before
            assert previous.two_qubit_after == current.two_qubit_before
            assert previous.depth_after == current.depth_before
        assert records[-1].gates_after == len(compiled.circuit)
        assert records[-1].two_qubit_after == compiled.two_qubit_gate_count
        assert records[-1].depth_after == compiled.circuit.depth()

    def test_semantic_counters(self, shared_decomposer):
        compiled = self._compiled(shared_decomposer)
        by_name = {record.pass_name: record for record in compiled.pass_stats}
        # NuOp splices decompositions in: it adds gates, never removes.
        assert by_name["nuop"].gates_added > 0
        assert by_name["nuop"].gates_removed == 0
        # The single-qubit merge can only shrink the circuit, and must not
        # touch the two-qubit budget.
        assert by_name["merge-1q"].gates_added == 0
        assert by_name["merge-1q"].two_qubit_delta == 0
        # Timings agree with the legacy pass_timings mapping.
        for record in compiled.pass_stats:
            assert record.wall_time >= 0.0
            assert record.wall_time <= compiled.pass_timings[record.pass_name] + 1e-9

    def test_aggregation_and_merge(self, shared_decomposer):
        compiled = self._compiled(shared_decomposer)
        totals = aggregate_pass_stats(compiled.pass_stats)
        assert totals["nuop"]["runs"] == 1
        assert totals["nuop"]["gates_added"] > 0
        merged = {}
        merge_aggregated_pass_stats(merged, totals)
        merge_aggregated_pass_stats(merged, totals)
        assert merged["nuop"]["runs"] == 2
        assert merged["nuop"]["gates_added"] == 2 * totals["nuop"]["gates_added"]

    def test_as_row_is_table_ready(self, shared_decomposer):
        compiled = self._compiled(shared_decomposer)
        row = compiled.pass_stats[0].as_row()
        assert row["pass"] == "layout"
        assert set(row) == {
            "pass", "gates", "removed", "added", "2q_delta", "depth_delta", "time_ms",
        }
