"""Integration tests for the heavier experiment drivers (Figures 7, 9, 10, 11).

These use drastically scaled-down configurations so the suite stays fast;
the benchmark harness under ``benchmarks/`` runs the quick configurations
and ``paper_scale()`` configurations reproduce the paper's setup.
"""

import numpy as np
import pytest

from repro.experiments.fig7 import Figure7Config, run_figure7
from repro.experiments.fig9 import Figure9Config, run_figure9
from repro.experiments.fig10 import (
    Figure10Config,
    Figure10fConfig,
    run_figure10,
    run_figure10f,
)
from repro.experiments.fig11 import (
    Figure11bConfig,
    run_figure11a,
    run_figure11b,
    tradeoff_from_measurements,
)


class TestFigure7:
    def test_sweep_structure(self, shared_decomposer):
        config = Figure7Config(
            error_multipliers=[4.0],
            qv_qubits=3,
            qv_circuits=1,
            qaoa_qubits=3,
            qaoa_circuits=1,
            shots=1000,
            seed=2,
        )
        result = run_figure7(config, decomposer=shared_decomposer)
        assert len(result.points) == 2  # one error point x two applications
        for point in result.points:
            assert 0.0 <= point.exact_metric <= 1.0
            assert 0.0 <= point.approximate_metric <= 1.0
        assert "Figure 7" in result.format_table()
        assert result.crossover_multiplier("qv") in (None, 4.0)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, shared_decomposer):
        config = Figure9Config(
            qv_qubits=3,
            qv_circuits=1,
            qaoa_qubits=3,
            qaoa_circuits=1,
            qft_qubits=3,
            shots=1000,
            seed=3,
            instruction_sets=["S3", "R1"],
        )
        return run_figure9(config, decomposer=shared_decomposer)

    def test_all_panels_present(self, result):
        for study in result.studies():
            assert set(study.per_set) == {"S3", "R1"}
            for per_set in study.per_set.values():
                assert per_set.metric_values

    def test_metrics_in_range(self, result):
        for study in result.studies():
            for per_set in study.per_set.values():
                assert -0.2 <= per_set.mean_metric <= 1.0

    def test_formatting_and_comparison_helpers(self, result):
        assert "qft" in result.format_table()
        assert isinstance(result.multi_type_beats_single("qv"), bool)


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self, shared_decomposer):
        config = Figure10Config(
            app_qubits=3,
            qv_circuits=1,
            qaoa_circuits=1,
            fh_qubits=4,
            shots=1000,
            seed=4,
            trajectories=5,
            instruction_sets=["S2", "G7"],
            full_fsim_error_scales=[1.0],
            include_no_variation_panel=True,
        )
        return run_figure10(config, decomposer=shared_decomposer)

    def test_all_panels_present(self, result):
        for study in result.studies():
            assert set(study.per_set) == {"S2", "G7"}
        assert result.qaoa_no_variation is not None

    def test_g7_never_needs_more_gates_than_s2(self, result):
        for study in result.studies():
            assert (
                study.per_set["G7"].mean_two_qubit_count
                <= study.per_set["S2"].mean_two_qubit_count + 1e-9
            )

    def test_format_table(self, result):
        table = result.format_table()
        assert "qv" in table and "no noise variation" in table

    def test_figure10f_sweep(self, shared_decomposer):
        config = Figure10fConfig(
            fh_sizes=[4], error_rates=[0.0036], shots=800, trajectories=5, seed=5
        )
        result = run_figure10f(config, decomposer=shared_decomposer)
        assert len(result.points) == 1
        point = result.points[0]
        assert point.num_qubits == 4
        assert isinstance(result.g7_always_wins(), bool)
        assert "Fermi-Hubbard" in result.format_table()


class TestFigure11:
    def test_panel_a_scaling(self):
        result = run_figure11a()
        assert result.circuits[54][8] == 8 * result.circuits[54][1]
        assert result.circuits[1000][8] > result.circuits[54][8]
        assert "calibration circuits" in result.format_table()

    def test_tradeoff_from_measurements(self):
        points = tradeoff_from_measurements(
            {"G1": {"qv": 0.68}, "G7": {"qv": 0.72}},
            baseline={"qv": 0.66},
        )
        assert [p.num_gate_types for p in points] == [2, 8]
        assert points[1].reliability_improvement["qv"] > 0

    def test_panel_b_quick_run(self, shared_decomposer):
        config = Figure11bConfig.quick()
        config.figure10_config.app_qubits = 3
        config.figure10_config.fh_qubits = 4
        config.figure10_config.qv_circuits = 1
        config.figure10_config.qaoa_circuits = 1
        config.figure10_config.shots = 800
        result = run_figure11b(config, decomposer=shared_decomposer)
        assert result.points
        assert result.savings_factor > 10
        assert "Figure 11b" in result.format_table()
