"""Tests for the shared experiment runner (compile -> simulate -> score)."""

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import compile_circuit
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import (
    InstructionSetResult,
    SimulationOptions,
    StudyResult,
    run_instruction_set_study,
    simulate_compiled,
)
from repro.metrics.hop import heavy_output_probability
from repro.simulators.statevector import ideal_probabilities


@pytest.fixture(scope="module")
def tiny_study(shared_decomposer):
    circuits = [qv_circuit(3, rng=np.random.default_rng(0))]
    instruction_sets = {
        "S1": single_gate_set("S1", vendor="google"),
        "G3": google_instruction_set("G3"),
    }
    return run_instruction_set_study(
        "qv",
        circuits,
        "HOP",
        heavy_output_probability,
        lambda: sycamore_device(),
        instruction_sets,
        decomposer=shared_decomposer,
        options=SimulationOptions(shots=1500, seed=2),
    )


class TestSimulateCompiled:
    def test_measured_distribution_is_normalised(self, shared_decomposer):
        device = sycamore_device()
        circuit = qv_circuit(3, rng=np.random.default_rng(1))
        compiled = compile_circuit(
            circuit, device, single_gate_set("S1"), decomposer=shared_decomposer
        )
        measured = simulate_compiled(compiled, device, SimulationOptions(shots=1000, seed=1))
        assert measured.shape == (8,)
        assert measured.sum() == pytest.approx(1.0)

    def test_measured_distribution_close_to_ideal_at_low_noise(self, shared_decomposer):
        device = sycamore_device(
            noise_variation=False, mean_two_qubit_error=1e-4, std_two_qubit_error=0.0
        )
        device.noise_model.default_readout_error = 0.0
        for qubit in device.noise_model.readout_error:
            device.noise_model.readout_error[qubit] = 0.0
        circuit = qv_circuit(3, rng=np.random.default_rng(2))
        compiled = compile_circuit(
            circuit, device, single_gate_set("S3"), decomposer=shared_decomposer
        )
        measured = simulate_compiled(
            compiled, device, SimulationOptions(shots=8000, seed=3, apply_readout_error=False)
        )
        ideal = ideal_probabilities(circuit)
        assert np.abs(measured - ideal).max() < 0.08


class TestStudyResults:
    def test_study_contains_all_sets(self, tiny_study):
        assert set(tiny_study.per_set) == {"S1", "G3"}
        for result in tiny_study.per_set.values():
            assert isinstance(result, InstructionSetResult)
            assert len(result.metric_values) == 1
            assert 0.0 <= result.mean_metric <= 1.0
            assert result.mean_two_qubit_count > 0

    def test_multi_type_set_never_uses_more_gates(self, tiny_study):
        assert (
            tiny_study.per_set["G3"].mean_two_qubit_count
            <= tiny_study.per_set["S1"].mean_two_qubit_count + 1e-9
        )

    def test_rows_and_formatting(self, tiny_study):
        rows = tiny_study.rows()
        assert len(rows) == 2
        assert {row["instruction_set"] for row in rows} == {"S1", "G3"}
        table = tiny_study.format_table()
        assert "HOP" in table and "G3" in table
        assert tiny_study.best_set() in {"S1", "G3"}

    def test_empty_result_is_nan(self):
        result = InstructionSetResult(instruction_set="X", metric_name="m")
        assert np.isnan(result.mean_metric)
        assert result.mean_two_qubit_count == 0.0
        study = StudyResult(application="a", metric_name="m", per_set={"X": result})
        assert "a" in study.format_table()
