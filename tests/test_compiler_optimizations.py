"""Tests for the Euler rewriting and gate-cancellation compiler passes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.cancellation import (
    cancel_adjacent_inverses,
    merge_adjacent_two_qubit_gates,
    optimize_circuit,
)
from repro.compiler.euler import (
    euler_operations,
    pulse_cost,
    rewrite_single_qubit_gates,
)
from repro.gates.parametric import u3
from repro.gates.unitary import allclose_up_to_global_phase, random_unitary


def circuit_unitary(circuit: QuantumCircuit) -> np.ndarray:
    return circuit.to_unitary()


class TestEulerOperations:
    @pytest.mark.parametrize("basis", ["zyz", "zxz", "u3"])
    def test_preserves_unitary(self, basis):
        rng = np.random.default_rng(3)
        for _ in range(5):
            matrix = random_unitary(2, rng)
            circuit = QuantumCircuit(1)
            for operation in euler_operations(matrix, 0, basis=basis):
                circuit.append_operation(operation)
            assert allclose_up_to_global_phase(circuit.to_unitary(), matrix, atol=1e-7)

    def test_identity_produces_no_operations(self):
        assert euler_operations(np.eye(2), 0, basis="zyz") == []
        assert euler_operations(np.eye(2), 0, basis="u3") == []

    def test_pure_z_rotation_stays_single_gate(self):
        from repro.gates.parametric import rz

        operations = euler_operations(rz(0.7), 0, basis="zyz")
        assert len(operations) == 1
        assert operations[0].gate.name == "rz"

    def test_zxz_uses_at_most_one_physical_pulse(self):
        rng = np.random.default_rng(11)
        for _ in range(5):
            operations = euler_operations(random_unitary(2, rng), 0, basis="zxz")
            physical = [op for op in operations if op.gate.name != "rz"]
            assert len(physical) <= 1

    def test_invalid_basis_and_shape(self):
        with pytest.raises(ValueError):
            euler_operations(np.eye(2), 0, basis="xyx")
        with pytest.raises(ValueError):
            euler_operations(np.eye(4), 0)

    @given(
        alpha=st.floats(0.01, 3.0),
        beta=st.floats(0.01, 6.0),
        lam=st.floats(0.01, 6.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_zyz_property(self, alpha, beta, lam):
        matrix = u3(alpha, beta, lam)
        circuit = QuantumCircuit(1)
        for operation in euler_operations(matrix, 0, basis="zyz"):
            circuit.append_operation(operation)
        assert allclose_up_to_global_phase(circuit.to_unitary(), matrix, atol=1e-6)


class TestRewriteCircuit:
    def _example_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.u3(0.3, 0.7, 1.1, 1)
        circuit.cz(0, 1)
        circuit.rz(0.5, 0)
        return circuit

    def test_unitary_preserved(self):
        circuit = self._example_circuit()
        rewritten = rewrite_single_qubit_gates(circuit, basis="zyz")
        assert allclose_up_to_global_phase(
            rewritten.to_unitary(), circuit.to_unitary(), atol=1e-7
        )

    def test_two_qubit_gates_untouched(self):
        rewritten = rewrite_single_qubit_gates(self._example_circuit(), basis="zxz")
        assert rewritten.num_two_qubit_gates() == 1

    def test_pulse_cost_counts(self):
        cost = pulse_cost(self._example_circuit(), basis="zxz")
        assert cost.two_qubit_gates == 1
        assert cost.physical_pulses >= 1
        assert cost.virtual_z >= 1
        assert cost.total_error_weight == cost.physical_pulses + cost.two_qubit_gates

    def test_virtual_z_only_circuit_has_zero_physical_pulses(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.3, 0)
        circuit.rz(-1.2, 0)
        cost = pulse_cost(circuit, basis="zxz")
        assert cost.physical_pulses == 0


class TestCancellation:
    def test_adjacent_cz_pair_cancels(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_chain_of_four_cancels_completely(self):
        circuit = QuantumCircuit(2)
        for _ in range(4):
            circuit.cx(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_intervening_gate_blocks_cancellation(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.x(0)
        circuit.cz(0, 1)
        assert len(cancel_adjacent_inverses(circuit)) == 3

    def test_unrelated_qubit_does_not_block(self):
        circuit = QuantumCircuit(3)
        circuit.cz(0, 1)
        circuit.x(2)
        circuit.cz(0, 1)
        result = cancel_adjacent_inverses(circuit)
        assert result.count_ops() == {"x": 1}

    def test_inverse_rotations_cancel(self):
        circuit = QuantumCircuit(1)
        circuit.rz(0.4, 0)
        circuit.rz(-0.4, 0)
        assert len(cancel_adjacent_inverses(circuit)) == 0

    def test_unitary_preserved(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cz(0, 1)
        circuit.cz(0, 1)
        circuit.cx(0, 1)
        original = circuit.to_unitary()
        cleaned = cancel_adjacent_inverses(circuit)
        assert allclose_up_to_global_phase(cleaned.to_unitary(), original, atol=1e-8)
        assert cleaned.num_two_qubit_gates() == 1


class TestTwoQubitFusion:
    def test_fuses_same_pair_run(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.rz(0.3, 0)
        circuit.cx(0, 1)
        fused = merge_adjacent_two_qubit_gates(circuit)
        assert len(fused) == 1
        assert fused.operations[0].gate.name == "fused_su4"
        assert allclose_up_to_global_phase(fused.to_unitary(), circuit.to_unitary(), atol=1e-8)

    def test_swapped_qubit_order_is_handled(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        circuit.cx(1, 0)
        fused = merge_adjacent_two_qubit_gates(circuit)
        assert allclose_up_to_global_phase(fused.to_unitary(), circuit.to_unitary(), atol=1e-8)

    def test_identity_block_is_dropped(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cz(0, 1)
        fused = merge_adjacent_two_qubit_gates(circuit)
        assert len(fused) == 0

    def test_blocks_end_at_other_pairs(self):
        circuit = QuantumCircuit(3)
        circuit.cz(0, 1)
        circuit.cz(1, 2)
        fused = merge_adjacent_two_qubit_gates(circuit)
        assert fused.num_two_qubit_gates() == 2

    def test_single_gate_not_wrapped(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        fused = merge_adjacent_two_qubit_gates(circuit)
        assert fused.operations[0].gate.name == "cz"


class TestOptimizePipeline:
    def test_pipeline_preserves_unitary_and_reduces_gates(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        circuit.cz(0, 1)
        circuit.cz(0, 1)
        circuit.rz(0.2, 0)
        circuit.rz(-0.2, 0)
        circuit.cx(0, 1)
        optimized = optimize_circuit(circuit)
        assert optimized.num_two_qubit_gates() == 1
        assert len(optimized) < len(circuit)
        assert allclose_up_to_global_phase(
            optimized.to_unitary(), circuit.to_unitary(), atol=1e-7
        )

    def test_fusion_option(self):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        circuit.cx(0, 1)
        optimized = optimize_circuit(circuit, fuse_two_qubit_blocks=True)
        assert optimized.num_two_qubit_gates() == 1
