"""The pluggable array-operations layer behind the simulation kernels.

Contracts:

* the **numpy backend** binds ``np.*`` directly, so routed kernels
  execute identical numpy calls (bit-identity of the fused kernels);
* the **registry** resolves by name, rejects unknown names loudly and
  degrades known-but-unavailable backends (cupy without CUDA) to numpy
  with a single warning;
* the ``REPRO_ARRAY_BACKEND`` **env knob** is re-read per call, warns
  once per distinct invalid value per process, and
  :class:`~repro.experiments.runner.SimulationOptions` validates it
  eagerly -- a typo raises ``ValueError`` at option construction;
* the **batched-replay counters** accumulate per backend name.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.experiments.runner import SimulationOptions
from repro.simulators.array_ops import (
    ARRAY_BACKEND_ENV_VAR,
    ArrayBackend,
    CupyArrayBackend,
    NumpyArrayBackend,
    active_array_backend,
    array_backend_stats,
    available_array_backends,
    record_batched_apply,
    register_array_backend,
    reset_array_backend_stats,
    reset_array_backend_warnings,
    resolve_array_backend,
    validate_array_backend_env,
)


@pytest.fixture(autouse=True)
def _fresh_warnings():
    reset_array_backend_warnings()
    yield
    reset_array_backend_warnings()


class TestNumpyBackend:
    def test_registered_and_default(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV_VAR, raising=False)
        assert "numpy" in available_array_backends()
        assert active_array_backend().name == "numpy"

    def test_ops_match_numpy_bitwise(self, rng):
        ops = resolve_array_backend("numpy")
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4, 2)) + 1j * rng.normal(size=(4, 4, 2))
        assert np.array_equal(
            ops.tensordot(a, b, axes=([1], [0])), np.tensordot(a, b, axes=([1], [0]))
        )
        stacked = ops.stack([a, a.T])
        assert np.array_equal(
            ops.matmul(stacked, stacked), np.matmul(np.stack([a, a.T]), np.stack([a, a.T]))
        )
        assert np.array_equal(
            ops.transpose(b, (2, 0, 1)), np.transpose(b, (2, 0, 1))
        )
        assert np.array_equal(ops.reshape(b, (2, -1)), np.reshape(b, (2, -1)))
        assert np.array_equal(
            ops.einsum("ij,jk->ik", a, a), np.einsum("ij,jk->ik", a, a)
        )
        assert ops.to_numpy(ops.asarray([1.0, 2.0])).dtype == np.float64
        assert ops.is_available()


class TestRegistry:
    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="numpy"):
            resolve_array_backend("tpu")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_array_backend(NumpyArrayBackend())

    def test_unavailable_backend_degrades_to_numpy_with_one_warning(self):
        class MissingBackend(ArrayBackend):
            name = "missing-device"

            def is_available(self) -> bool:
                return False

        from repro.simulators import array_ops

        register_array_backend(MissingBackend(), overwrite=True)
        try:
            with pytest.warns(RuntimeWarning, match="missing-device"):
                resolved = resolve_array_backend("missing-device")
            assert resolved.name == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert resolve_array_backend("missing-device").name == "numpy"
        finally:
            with array_ops._REGISTRY_LOCK:
                array_ops._REGISTRY.pop("missing-device", None)

    def test_cupy_adapter_degrades_when_cupy_absent(self):
        adapter = CupyArrayBackend()
        if adapter.is_available():  # pragma: no cover - CUDA hosts only
            pytest.skip("cupy is installed here; degradation path not reachable")
        with pytest.warns(RuntimeWarning, match="cupy"):
            assert resolve_array_backend("cupy").name == "numpy"


class TestEnvKnob:
    def test_env_selects_and_rereads_per_call(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "numpy")
        assert active_array_backend().name == "numpy"
        monkeypatch.delenv(ARRAY_BACKEND_ENV_VAR)
        assert active_array_backend().name == "numpy"

    def test_invalid_value_warns_once_per_distinct_value(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "gpu9000")
        with pytest.warns(RuntimeWarning, match="gpu9000"):
            assert active_array_backend().name == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert active_array_backend().name == "numpy"
        # A *different* invalid value gets its own (single) warning.
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "gpu9001")
        with pytest.warns(RuntimeWarning, match="gpu9001"):
            assert active_array_backend().name == "numpy"

    def test_validate_raises_on_unknown_and_passes_known(self, monkeypatch):
        monkeypatch.delenv(ARRAY_BACKEND_ENV_VAR, raising=False)
        assert validate_array_backend_env() is None
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "numpy")
        assert validate_array_backend_env() == "numpy"
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "gpu9000")
        with pytest.raises(ValueError, match="gpu9000"):
            validate_array_backend_env()

    def test_simulation_options_validate_array_backend_eagerly(self, monkeypatch):
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "gpu9000")
        with pytest.raises(ValueError, match="gpu9000"):
            SimulationOptions()
        # cupy-on-CPU is a valid *request* (degrades at resolve time, not
        # a spec error), so option construction must accept it.
        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, "cupy")
        SimulationOptions()

    def test_simulation_options_validate_batch(self):
        with pytest.raises(ValueError, match="batch"):
            SimulationOptions(batch=-1)
        assert SimulationOptions(batch=0).batch == 0
        assert SimulationOptions(batch=7).batch == 7

    def test_batch_excluded_from_fingerprint(self):
        assert (
            SimulationOptions(batch=0).fingerprint()
            == SimulationOptions(batch=1).fingerprint()
            == SimulationOptions(batch=7).fingerprint()
        )


class TestBatchCounters:
    def test_record_and_reset(self):
        reset_array_backend_stats()
        record_batched_apply("numpy", 5)
        record_batched_apply("numpy", 2)
        record_batched_apply("cupy", 3)
        stats = array_backend_stats()
        assert stats["numpy"] == {"batched_passes": 2, "batched_items": 7}
        assert stats["cupy"] == {"batched_passes": 1, "batched_items": 3}
        reset_array_backend_stats()
        assert array_backend_stats() == {}
