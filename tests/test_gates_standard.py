"""Tests for the fixed gate matrices."""

import numpy as np
import pytest

from repro.gates import standard
from repro.gates.standard import STANDARD_GATES, standard_gate
from repro.gates.unitary import is_unitary


class TestStandardGateMatrices:
    def test_every_standard_gate_is_unitary(self):
        for name, matrix in STANDARD_GATES.items():
            assert is_unitary(matrix), f"{name} is not unitary"

    def test_pauli_algebra(self):
        assert np.allclose(standard.X @ standard.X, np.eye(2))
        assert np.allclose(standard.Y @ standard.Y, np.eye(2))
        assert np.allclose(standard.Z @ standard.Z, np.eye(2))
        assert np.allclose(standard.X @ standard.Y, 1j * standard.Z)

    def test_hadamard_squares_to_identity(self):
        assert np.allclose(standard.H @ standard.H, np.eye(2))

    def test_s_and_t_relations(self):
        assert np.allclose(standard.S @ standard.S, standard.Z)
        assert np.allclose(standard.T @ standard.T, standard.S)
        assert np.allclose(standard.S @ standard.SDG, np.eye(2))
        assert np.allclose(standard.T @ standard.TDG, np.eye(2))

    def test_sx_squares_to_x(self):
        assert np.allclose(standard.SX @ standard.SX, standard.X)

    def test_cz_matrix(self):
        assert np.allclose(standard.CZ, np.diag([1, 1, 1, -1]))

    def test_cnot_action_on_basis_states(self):
        # |10> -> |11>, |11> -> |10>, |0x> unchanged.
        assert np.allclose(standard.CNOT @ np.eye(4)[:, 2], np.eye(4)[:, 3])
        assert np.allclose(standard.CNOT @ np.eye(4)[:, 3], np.eye(4)[:, 2])
        assert np.allclose(standard.CNOT @ np.eye(4)[:, 0], np.eye(4)[:, 0])
        assert np.allclose(standard.CNOT @ np.eye(4)[:, 1], np.eye(4)[:, 1])

    def test_swap_exchanges_basis_states(self):
        assert np.allclose(standard.SWAP @ np.eye(4)[:, 1], np.eye(4)[:, 2])
        assert np.allclose(standard.SWAP @ np.eye(4)[:, 2], np.eye(4)[:, 1])

    def test_iswap_adds_phase_on_exchange(self):
        assert np.allclose(standard.ISWAP @ np.eye(4)[:, 1], 1j * np.eye(4)[:, 2])

    def test_sqrt_iswap_squares_to_iswap(self):
        assert np.allclose(standard.SQRT_ISWAP @ standard.SQRT_ISWAP, standard.ISWAP)

    def test_syc_matches_fsim_parameters(self):
        from repro.gates.parametric import fsim

        assert np.allclose(standard.SYC, fsim(np.pi / 2, np.pi / 6))


class TestStandardGateLookup:
    def test_lookup_is_case_insensitive(self):
        assert np.allclose(standard_gate("CZ"), standard.CZ)
        assert np.allclose(standard_gate("Swap"), standard.SWAP)

    def test_lookup_returns_copy(self):
        matrix = standard_gate("x")
        matrix[0, 0] = 99.0
        assert np.allclose(standard.X, [[0, 1], [1, 0]])

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            standard_gate("not_a_gate")

    def test_cx_alias_matches_cnot(self):
        assert np.allclose(standard_gate("cx"), standard_gate("cnot"))
