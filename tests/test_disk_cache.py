"""Persistent disk compilation cache: correctness, robustness, plumbing.

Pins the ISSUE's acceptance properties: a disk-cache round trip is
bit-identical to the uncached compile (result *and* device calibration
RNG state), corrupt/mismatched entries degrade to misses, the tier stays
inert unless configured, the in-memory tier evicts LRU, and the CLI can
inspect and clear the persistent tier.
"""

from __future__ import annotations

import io
import pickle
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.caching.disk import (
    DISK_CACHE_SCHEMA_VERSION,
    DiskCompilationCache,
    cache_key_digest,
    configure_disk_cache,
    get_global_disk_cache,
    reset_disk_cache_configuration,
)
from repro.core.instruction_sets import full_fsim_set, google_instruction_set
from repro.core.pipeline import (
    CompilationCache,
    _CacheEntry,
    compile_circuit,
    compile_circuit_cached,
)
from repro.devices.synthetic import synthetic_device


@pytest.fixture(autouse=True)
def _isolated_disk_configuration(monkeypatch):
    """Keep each test's disk-cache configuration from leaking to the next."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    reset_disk_cache_configuration()
    yield
    reset_disk_cache_configuration()


def _circuit():
    return qv_circuit(3, rng=np.random.default_rng(2))


def _device():
    return synthetic_device(5, "line", seed=13)


def _assert_bit_identical(a, b):
    assert len(a.circuit) == len(b.circuit)
    for left, right in zip(a.circuit, b.circuit):
        assert left.qubits == right.qubits
        assert np.array_equal(left.gate.matrix, right.gate.matrix)
    assert a.physical_qubits == b.physical_qubits
    assert a.initial_mapping == b.initial_mapping
    assert a.final_mapping == b.final_mapping
    assert a.gate_type_usage == b.gate_type_usage
    assert a.decomposition_fidelities == b.decomposition_fidelities
    assert a.emitted_gate_types == b.emitted_gate_types


class TestDiskRoundTrip:
    @pytest.mark.parametrize(
        "set_factory",
        [lambda: google_instruction_set("G3"), lambda: full_fsim_set()],
        ids=["discrete", "continuous"],
    )
    def test_disk_hit_matches_uncached_compile(self, tmp_path, set_factory, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)

        device_uncached = _device()
        uncached = compile_circuit(
            _circuit(), device_uncached, set_factory(), decomposer=shared_decomposer
        )

        device_writer = _device()
        compile_circuit_cached(
            _circuit(),
            device_writer,
            set_factory(),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert disk.stats()["writes"] == 1

        # Fresh memory tier + fresh device: the result must come off disk
        # and leave the device exactly where a cold compile would.
        device_reader = _device()
        from_disk = compile_circuit_cached(
            _circuit(),
            device_reader,
            set_factory(),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert disk.stats()["hits"] == 1
        _assert_bit_identical(uncached, from_disk)
        assert (
            device_reader.calibration_fingerprint()
            == device_uncached.calibration_fingerprint()
        )

    def test_disk_hit_promotes_to_memory_tier(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        # Fresh device per call, as the engine's device_factory() does: the
        # key embeds the *pre-compilation* calibration state.
        memory = CompilationCache()
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, cache=memory, disk_cache=disk,
        )
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, cache=memory, disk_cache=disk,
        )
        stats = memory.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1  # second call served by the promoted entry
        assert disk.stats()["hits"] == 1  # disk consulted exactly once

    def test_pipelines_do_not_share_entries(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        shared_kwargs = dict(decomposer=shared_decomposer, disk_cache=disk)
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="default", **shared_kwargs,
        )
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="optimized", **shared_kwargs,
        )
        assert disk.entry_count() == 2
        # Content-equal alias: 'no-cancellation' reuses the 'default' entry,
        # but the hit must still be labelled with the pipeline the caller
        # selected.
        aliased = compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="no-cancellation", **shared_kwargs,
        )
        assert disk.entry_count() == 2
        assert disk.stats()["hits"] == 1
        assert aliased.pipeline_name == "no-cancellation"


class TestDiskRobustness:
    def _seed_entry(self, disk, shared_decomposer):
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        paths = list(disk.version_dir.rglob("*.pkl"))
        assert len(paths) == 1
        return paths[0]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        path.write_bytes(b"not a pickle at all")

        device = _device()
        recompiled = compile_circuit_cached(
            _circuit(),
            device,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert recompiled.two_qubit_gate_count > 0
        assert disk.stats()["hits"] == 0
        assert disk.stats()["writes"] == 2  # corrupt file replaced by a fresh entry

    def test_schema_version_mismatch_is_a_miss(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = DISK_CACHE_SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert disk.get(tuple(payload["key"])) is None

    def test_key_echo_mismatch_is_a_miss(self, tmp_path, shared_decomposer):
        # A digest collision (or a tampered file) must be rejected by the
        # full-key comparison embedded in the payload.
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        payload = pickle.loads(path.read_bytes())
        real_key = tuple(payload["key"])
        payload["key"] = ["tampered"]
        path.write_bytes(pickle.dumps(payload))
        assert disk.get(real_key) is None

    def test_clear_removes_entries(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        self._seed_entry(disk, shared_decomposer)
        assert disk.entry_count() == 1
        assert disk.clear() == 1
        assert disk.entry_count() == 0
        assert disk.size_bytes() == 0

    def test_clear_sweeps_empty_fanout_directories(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        self._seed_entry(disk, shared_decomposer)
        assert any(path.is_dir() for path in disk.version_dir.iterdir())
        disk.clear()
        # No empty two-character fan-out (or namespace) directories left.
        assert list(disk.version_dir.rglob("*")) == []

    def test_clear_and_stats_on_never_written_directory(self, tmp_path):
        disk = DiskCompilationCache(tmp_path / "never-written")
        assert disk.clear() == 0
        stats = disk.stats()
        assert stats["entries"] == 0
        assert stats["size_bytes"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0 and stats["writes"] == 0
        # Reporting must not create the directory as a side effect.
        assert not (tmp_path / "never-written").exists()

    def test_unwritable_root_degrades_gracefully(self, tmp_path, shared_decomposer):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        disk = DiskCompilationCache(blocker)  # mkdir under a file will fail
        compiled = compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert compiled.two_qubit_gate_count > 0
        assert disk.stats()["writes"] == 0

    def test_key_digest_is_stable_and_key_sensitive(self):
        key = ("a", "b", 1.0, True, None)
        assert cache_key_digest(key) == cache_key_digest(tuple(key))
        assert cache_key_digest(key) != cache_key_digest(("a", "b", 1.0, True, 2))


class TestGlobalConfiguration:
    def test_inert_by_default(self):
        assert get_global_disk_cache() is None

    def test_env_var_activates_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = get_global_disk_cache()
        assert cache is not None
        assert cache.root == tmp_path
        # Same directory -> same instance, so statistics accumulate.
        assert get_global_disk_cache() is cache

    def test_explicit_configure_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = configure_disk_cache(str(tmp_path / "explicit"))
        assert get_global_disk_cache() is explicit
        # Explicit disable beats the environment variable too.
        configure_disk_cache(None)
        assert get_global_disk_cache() is None
        reset_disk_cache_configuration()
        assert get_global_disk_cache().root == tmp_path / "env"


class TestMemoryCacheLRU:
    def _entry(self):
        return _CacheEntry(compiled=object(), emitted_type_keys=[])

    def test_eviction_is_least_recently_used(self):
        cache = CompilationCache(max_entries=2)
        cache._put(("a",), self._entry())
        cache._put(("b",), self._entry())
        assert cache._get(("a",)) is not None  # refresh 'a'
        cache._put(("c",), self._entry())  # evicts 'b', not 'a'
        assert cache._get(("a",)) is not None
        assert cache._get(("b",)) is None
        assert cache._get(("c",)) is not None

    def test_stats_report_bound(self):
        cache = CompilationCache(max_entries=7)
        assert cache.stats()["max_entries"] == 7
        assert len(cache) == 0

    def test_global_cache_size_env(self, monkeypatch):
        from repro.core.pipeline import _default_cache_size

        monkeypatch.delenv("REPRO_COMPILE_CACHE_SIZE", raising=False)
        assert _default_cache_size() == 4096
        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "128")
        assert _default_cache_size() == 128

    @pytest.mark.parametrize("raw", ["not-a-number", "0", "-5"])
    def test_invalid_cache_size_warns_and_uses_default(self, monkeypatch, raw):
        # Regression: 0/negative used to be silently clamped to 1, turning
        # the global cache into a single-entry thrash machine.
        from repro.core.pipeline import _default_cache_size

        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", raw)
        with pytest.warns(RuntimeWarning, match="REPRO_COMPILE_CACHE_SIZE"):
            assert _default_cache_size() == 4096


class TestCacheCli:
    def _run(self, argv):
        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(argv)
        return code, buffer.getvalue()

    def test_stats_without_configuration(self):
        code, output = self._run(["cache", "stats"])
        assert code == 0
        assert "no disk compilation/simulation cache configured" in output

    def test_stats_and_clear_with_cache_dir(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        code, output = self._run(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert str(tmp_path) in output
        assert "entries" in output

        code, output = self._run(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "cleared 1" in output
        assert disk.entry_count() == 0

    def test_pipelines_listing(self):
        code, output = self._run(["pipelines"])
        assert code == 0
        assert "default" in output
        assert "no-cancellation" in output


class TestDiskSizeCap:
    """REPRO_CACHE_MAX_BYTES: LRU-by-mtime eviction for the disk tier."""

    def _put(self, disk, label, payload_bytes=2000):
        # Keys only need to be tuples of scalars; the payload is a plain
        # string blob so entry sizes are controlled precisely.
        return disk.put_blob("test", (label,), "x" * payload_bytes)

    def test_oldest_entries_evicted_over_cap(self, tmp_path):
        import os
        import time

        disk = DiskCompilationCache(tmp_path, max_bytes=6000)
        for index in range(3):
            assert self._put(disk, f"entry-{index}")
        # Assign explicit, distinct mtimes so LRU ordering is unambiguous
        # even on coarse-grained filesystems, and remember which file is
        # oldest (file names are digests, so labels can't identify them).
        now = time.time()
        paths = sorted(disk.version_dir.rglob("*.pkl"))
        for age, path in enumerate(paths):
            stamp = now - 1000 * (len(paths) - age)
            os.utime(path, (stamp, stamp))
        oldest = paths[0]
        assert self._put(disk, "entry-3")  # pushes the footprint over 6000
        assert disk.evictions >= 1
        assert not oldest.exists()  # the LRU entry was the victim
        assert disk.size_bytes() <= 6000

    def test_read_refreshes_recency(self, tmp_path):
        import os
        import time

        disk = DiskCompilationCache(tmp_path, max_bytes=5500)
        assert self._put(disk, "a")
        assert self._put(disk, "b")
        # Age both entries, then read 'a': it must survive the next eviction.
        stamp = time.time() - 1000
        for path in disk.version_dir.rglob("*.pkl"):
            os.utime(path, (stamp, stamp))
        assert disk.get_blob("test", ("a",)) is not None
        assert self._put(disk, "c")
        assert disk.get_blob("test", ("a",)) is not None  # refreshed, kept
        assert disk.get_blob("test", ("b",)) is None  # LRU victim

    def test_newly_written_entry_is_never_the_victim(self, tmp_path):
        disk = DiskCompilationCache(tmp_path, max_bytes=100)  # below one entry
        assert self._put(disk, "solo")
        assert disk.get_blob("test", ("solo",)) is not None

    def test_stats_surface_cap_and_evictions(self, tmp_path):
        disk = DiskCompilationCache(tmp_path, max_bytes=4096)
        stats = disk.stats()
        assert stats["max_bytes"] == 4096
        assert stats["evictions"] == 0
        # Unbounded is None (type-stable for numeric consumers); only the
        # CLI renders it as "unbounded".
        unbounded = DiskCompilationCache(tmp_path / "other")
        assert unbounded.stats()["max_bytes"] is None

    def test_registry_instance_picks_up_late_env_cap(self, tmp_path, monkeypatch):
        from repro.caching.disk import disk_cache_for

        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
        shared = disk_cache_for(tmp_path / "late-cap")
        assert shared.max_bytes is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "9999")
        assert shared.max_bytes == 9999  # env re-consulted, not frozen

    def test_env_var_configures_cap(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "12345")
        assert DiskCompilationCache(tmp_path).max_bytes == 12345
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "zero")
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_MAX_BYTES"):
            assert DiskCompilationCache(tmp_path).max_bytes is None
        monkeypatch.setenv("REPRO_CACHE_MAX_BYTES", "-1")
        with pytest.warns(RuntimeWarning, match="REPRO_CACHE_MAX_BYTES"):
            assert DiskCompilationCache(tmp_path).max_bytes is None
        monkeypatch.delenv("REPRO_CACHE_MAX_BYTES")
        assert DiskCompilationCache(tmp_path).max_bytes is None


class TestBlobStorage:
    """Auxiliary payloads (autotuner verdicts) share the versioned tree."""

    def test_round_trip(self, tmp_path):
        disk = DiskCompilationCache(tmp_path)
        key = ("blob", 1, True)
        assert disk.get_blob("aux", key) is None
        assert disk.put_blob("aux", key, {"answer": 42})
        assert disk.get_blob("aux", key) == {"answer": 42}

    def test_kinds_are_namespaced(self, tmp_path):
        disk = DiskCompilationCache(tmp_path)
        key = ("blob", 2)
        disk.put_blob("kind-a", key, "a")
        disk.put_blob("kind-b", key, "b")
        assert disk.get_blob("kind-a", key) == "a"
        assert disk.get_blob("kind-b", key) == "b"

    def test_clear_removes_blobs_too(self, tmp_path):
        disk = DiskCompilationCache(tmp_path)
        disk.put_blob("aux", ("blob", 3), "payload")
        assert disk.clear() == 1
        assert disk.get_blob("aux", ("blob", 3)) is None


class TestSharedInstanceRegistry:
    """Per-directory DiskCompilationCache instances are shared process-wide."""

    def test_same_directory_same_instance(self, tmp_path):
        from repro.caching.disk import disk_cache_for

        direct = disk_cache_for(tmp_path)
        respelled = disk_cache_for(str(tmp_path) + "/./")
        assert direct is respelled

    def test_run_study_counters_visible_to_cli_stats(self, tmp_path, shared_decomposer):
        from repro.caching.disk import disk_cache_for
        from repro.experiments.engine import run_study
        from repro.experiments.runner import SimulationOptions
        from repro.metrics.hop import heavy_output_probability

        kwargs = dict(
            application="qv",
            circuits=[_circuit()],
            metric_name="HOP",
            metric=heavy_output_probability,
            device_factory=_device,
            instruction_sets={"G3": google_instruction_set("G3")},
            options=SimulationOptions(shots=400, seed=5),
            decomposer=shared_decomposer,
            compilation_cache=CompilationCache(),
            cache_dir=str(tmp_path),
        )
        run_study(**kwargs)
        shared = disk_cache_for(tmp_path)
        assert shared.writes >= 1  # the study's traffic landed on the registry

        # The CLI resolves --cache-dir through the same registry, so its
        # stats include the study's hits/misses/writes (the bug this pins:
        # a private instance used to report all-zero counters).
        import io
        from contextlib import redirect_stdout

        from repro.cli import main

        kwargs["compilation_cache"] = CompilationCache()
        run_study(**kwargs)  # warm pass: all compiles served from disk
        assert shared.hits >= 1
        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        output = buffer.getvalue()
        assert f"hits" in output
        row = next(line for line in output.splitlines() if "hits" in line)
        assert "0" != row.split()[-1]  # non-zero hit count rendered


class TestOrphanedSchemaVersions:
    """Schema bumps must not leave uncollectable garbage behind."""

    def _orphan_tree(self, root, payload_bytes=3000):
        orphan_dir = root / "v1" / "ab"
        orphan_dir.mkdir(parents=True)
        orphan = orphan_dir / "abcdef.pkl"
        orphan.write_bytes(b"x" * payload_bytes)
        return orphan

    def test_clear_removes_orphaned_versions(self, tmp_path):
        disk = DiskCompilationCache(tmp_path)
        orphan = self._orphan_tree(tmp_path)
        disk.put_blob("aux", ("k",), "v")
        assert disk.clear() == 2  # current entry + v1 orphan
        assert not orphan.exists()
        assert not orphan.parent.exists()  # fan-out dir swept too

    def test_stats_report_orphan_bytes(self, tmp_path):
        disk = DiskCompilationCache(tmp_path)
        self._orphan_tree(tmp_path, payload_bytes=3000)
        stats = disk.stats()
        assert stats["entries"] == 0  # current version is empty
        assert stats["orphan_bytes"] == 3000

    def test_eviction_counts_and_collects_orphans_first(self, tmp_path):
        import os
        import time

        orphan = self._orphan_tree(tmp_path, payload_bytes=3000)
        stamp = time.time() - 5000
        os.utime(orphan, (stamp, stamp))
        disk = DiskCompilationCache(tmp_path, max_bytes=4000)
        assert disk.put_blob("aux", ("k",), "x" * 2000)
        # 3000 (orphan) + ~2400 (new entry) > 4000: the untouched orphan is
        # the oldest file and must be the victim.
        assert not orphan.exists()
        assert disk.get_blob("aux", ("k",)) is not None
