"""Persistent disk compilation cache: correctness, robustness, plumbing.

Pins the ISSUE's acceptance properties: a disk-cache round trip is
bit-identical to the uncached compile (result *and* device calibration
RNG state), corrupt/mismatched entries degrade to misses, the tier stays
inert unless configured, the in-memory tier evicts LRU, and the CLI can
inspect and clear the persistent tier.
"""

from __future__ import annotations

import io
import pickle
from contextlib import redirect_stdout

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.caching.disk import (
    DISK_CACHE_SCHEMA_VERSION,
    DiskCompilationCache,
    cache_key_digest,
    configure_disk_cache,
    get_global_disk_cache,
    reset_disk_cache_configuration,
)
from repro.core.instruction_sets import full_fsim_set, google_instruction_set
from repro.core.pipeline import (
    CompilationCache,
    _CacheEntry,
    compile_circuit,
    compile_circuit_cached,
)
from repro.devices.synthetic import synthetic_device


@pytest.fixture(autouse=True)
def _isolated_disk_configuration(monkeypatch):
    """Keep each test's disk-cache configuration from leaking to the next."""
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    reset_disk_cache_configuration()
    yield
    reset_disk_cache_configuration()


def _circuit():
    return qv_circuit(3, rng=np.random.default_rng(2))


def _device():
    return synthetic_device(5, "line", seed=13)


def _assert_bit_identical(a, b):
    assert len(a.circuit) == len(b.circuit)
    for left, right in zip(a.circuit, b.circuit):
        assert left.qubits == right.qubits
        assert np.array_equal(left.gate.matrix, right.gate.matrix)
    assert a.physical_qubits == b.physical_qubits
    assert a.initial_mapping == b.initial_mapping
    assert a.final_mapping == b.final_mapping
    assert a.gate_type_usage == b.gate_type_usage
    assert a.decomposition_fidelities == b.decomposition_fidelities
    assert a.emitted_gate_types == b.emitted_gate_types


class TestDiskRoundTrip:
    @pytest.mark.parametrize(
        "set_factory",
        [lambda: google_instruction_set("G3"), lambda: full_fsim_set()],
        ids=["discrete", "continuous"],
    )
    def test_disk_hit_matches_uncached_compile(self, tmp_path, set_factory, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)

        device_uncached = _device()
        uncached = compile_circuit(
            _circuit(), device_uncached, set_factory(), decomposer=shared_decomposer
        )

        device_writer = _device()
        compile_circuit_cached(
            _circuit(),
            device_writer,
            set_factory(),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert disk.stats()["writes"] == 1

        # Fresh memory tier + fresh device: the result must come off disk
        # and leave the device exactly where a cold compile would.
        device_reader = _device()
        from_disk = compile_circuit_cached(
            _circuit(),
            device_reader,
            set_factory(),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert disk.stats()["hits"] == 1
        _assert_bit_identical(uncached, from_disk)
        assert (
            device_reader.calibration_fingerprint()
            == device_uncached.calibration_fingerprint()
        )

    def test_disk_hit_promotes_to_memory_tier(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        # Fresh device per call, as the engine's device_factory() does: the
        # key embeds the *pre-compilation* calibration state.
        memory = CompilationCache()
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, cache=memory, disk_cache=disk,
        )
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, cache=memory, disk_cache=disk,
        )
        stats = memory.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1  # second call served by the promoted entry
        assert disk.stats()["hits"] == 1  # disk consulted exactly once

    def test_pipelines_do_not_share_entries(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        shared_kwargs = dict(decomposer=shared_decomposer, disk_cache=disk)
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="default", **shared_kwargs,
        )
        compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="optimized", **shared_kwargs,
        )
        assert disk.entry_count() == 2
        # Content-equal alias: 'no-cancellation' reuses the 'default' entry,
        # but the hit must still be labelled with the pipeline the caller
        # selected.
        aliased = compile_circuit_cached(
            _circuit(), _device(), google_instruction_set("G3"),
            cache=CompilationCache(), pipeline="no-cancellation", **shared_kwargs,
        )
        assert disk.entry_count() == 2
        assert disk.stats()["hits"] == 1
        assert aliased.pipeline_name == "no-cancellation"


class TestDiskRobustness:
    def _seed_entry(self, disk, shared_decomposer):
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        paths = list(disk.version_dir.rglob("*.pkl"))
        assert len(paths) == 1
        return paths[0]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        path.write_bytes(b"not a pickle at all")

        device = _device()
        recompiled = compile_circuit_cached(
            _circuit(),
            device,
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert recompiled.two_qubit_gate_count > 0
        assert disk.stats()["hits"] == 0
        assert disk.stats()["writes"] == 2  # corrupt file replaced by a fresh entry

    def test_schema_version_mismatch_is_a_miss(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        payload = pickle.loads(path.read_bytes())
        payload["schema"] = DISK_CACHE_SCHEMA_VERSION + 1
        path.write_bytes(pickle.dumps(payload))
        assert disk.get(tuple(payload["key"])) is None

    def test_key_echo_mismatch_is_a_miss(self, tmp_path, shared_decomposer):
        # A digest collision (or a tampered file) must be rejected by the
        # full-key comparison embedded in the payload.
        disk = DiskCompilationCache(tmp_path)
        path = self._seed_entry(disk, shared_decomposer)
        payload = pickle.loads(path.read_bytes())
        real_key = tuple(payload["key"])
        payload["key"] = ["tampered"]
        path.write_bytes(pickle.dumps(payload))
        assert disk.get(real_key) is None

    def test_clear_removes_entries(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        self._seed_entry(disk, shared_decomposer)
        assert disk.entry_count() == 1
        assert disk.clear() == 1
        assert disk.entry_count() == 0
        assert disk.size_bytes() == 0

    def test_unwritable_root_degrades_gracefully(self, tmp_path, shared_decomposer):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        disk = DiskCompilationCache(blocker)  # mkdir under a file will fail
        compiled = compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        assert compiled.two_qubit_gate_count > 0
        assert disk.stats()["writes"] == 0

    def test_key_digest_is_stable_and_key_sensitive(self):
        key = ("a", "b", 1.0, True, None)
        assert cache_key_digest(key) == cache_key_digest(tuple(key))
        assert cache_key_digest(key) != cache_key_digest(("a", "b", 1.0, True, 2))


class TestGlobalConfiguration:
    def test_inert_by_default(self):
        assert get_global_disk_cache() is None

    def test_env_var_activates_tier(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = get_global_disk_cache()
        assert cache is not None
        assert cache.root == tmp_path
        # Same directory -> same instance, so statistics accumulate.
        assert get_global_disk_cache() is cache

    def test_explicit_configure_wins_over_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        explicit = configure_disk_cache(str(tmp_path / "explicit"))
        assert get_global_disk_cache() is explicit
        # Explicit disable beats the environment variable too.
        configure_disk_cache(None)
        assert get_global_disk_cache() is None
        reset_disk_cache_configuration()
        assert get_global_disk_cache().root == tmp_path / "env"


class TestMemoryCacheLRU:
    def _entry(self):
        return _CacheEntry(compiled=object(), emitted_type_keys=[])

    def test_eviction_is_least_recently_used(self):
        cache = CompilationCache(max_entries=2)
        cache._put(("a",), self._entry())
        cache._put(("b",), self._entry())
        assert cache._get(("a",)) is not None  # refresh 'a'
        cache._put(("c",), self._entry())  # evicts 'b', not 'a'
        assert cache._get(("a",)) is not None
        assert cache._get(("b",)) is None
        assert cache._get(("c",)) is not None

    def test_stats_report_bound(self):
        cache = CompilationCache(max_entries=7)
        assert cache.stats()["max_entries"] == 7
        assert len(cache) == 0

    def test_global_cache_size_env(self, monkeypatch):
        from repro.core.pipeline import _default_cache_size

        monkeypatch.delenv("REPRO_COMPILE_CACHE_SIZE", raising=False)
        assert _default_cache_size() == 4096
        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "128")
        assert _default_cache_size() == 128
        monkeypatch.setenv("REPRO_COMPILE_CACHE_SIZE", "not-a-number")
        assert _default_cache_size() == 4096


class TestCacheCli:
    def _run(self, argv):
        from repro.cli import main

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            code = main(argv)
        return code, buffer.getvalue()

    def test_stats_without_configuration(self):
        code, output = self._run(["cache", "stats"])
        assert code == 0
        assert "no disk compilation cache configured" in output

    def test_stats_and_clear_with_cache_dir(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        compile_circuit_cached(
            _circuit(),
            _device(),
            google_instruction_set("G3"),
            decomposer=shared_decomposer,
            cache=CompilationCache(),
            disk_cache=disk,
        )
        code, output = self._run(["cache", "stats", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert str(tmp_path) in output
        assert "entries" in output

        code, output = self._run(["cache", "clear", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "cleared 1" in output
        assert disk.entry_count() == 0

    def test_pipelines_listing(self):
        code, output = self._run(["pipelines"])
        assert code == 0
        assert "default" in output
        assert "no-cancellation" in output
