"""IR invariant checkers and the ``REPRO_VERIFY_PASSES`` pass hook.

Two halves.  The positive half: real compiles of every registered
pipeline pass :func:`verify_compiled_circuit` clean, and enabling the
per-pass hook changes nothing about the compiled artefact (bit-identical
circuits, placements, calibration RNG state).  The negative half: a
deliberately broken compiled circuit, and a deliberately broken compiler
pass, are each *caught* -- the hook naming the offending pass is the
whole point of checking at pass boundaries.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.circuit_checks import (
    PassVerificationError,
    SCHEDULE_TIME_ATOL,
    VERIFY_PASSES_ENV_VAR,
    check_connectivity,
    check_gate_types_registered,
    check_instruction_set_membership,
    check_mapping_consistency,
    check_moment_disjointness,
    check_qubit_bounds,
    check_schedule,
    verify_compiled_circuit,
    verify_passes_enabled,
)
from repro.applications.ghz import ghz_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.hashing import circuit_fingerprint
from repro.compiler.manager import (
    CompilerPass,
    PassContext,
    available_pipelines,
)
from repro.compiler.scheduling import Schedule, ScheduledOperation
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import google_catalogue
from repro.core.pipeline import compile_circuit
from repro.devices.sycamore import sycamore_device


@pytest.fixture(scope="module")
def decomposer():
    return NuOpDecomposer()


@pytest.fixture()
def device():
    return sycamore_device()


@pytest.fixture()
def s1():
    return google_catalogue()["S1"]


class TestCompiledCircuitsAreClean:
    @pytest.mark.parametrize("pipeline", sorted(available_pipelines()))
    def test_every_pipeline_verifies_clean(self, pipeline, device, s1, decomposer):
        compiled = compile_circuit(
            ghz_circuit(3), device, s1, decomposer=decomposer, pipeline=pipeline
        )
        assert verify_compiled_circuit(compiled, device, s1) == []

    def test_continuous_set_verifies_clean(self, device, decomposer):
        fullfsim = google_catalogue()["FullfSim"]
        compiled = compile_circuit(
            ghz_circuit(3), device, fullfsim, decomposer=decomposer
        )
        assert verify_compiled_circuit(compiled, device, fullfsim) == []


class TestBrokenArtefactsAreCaught:
    def test_uncoupled_two_qubit_gate(self, device, s1, decomposer):
        compiled = compile_circuit(ghz_circuit(3), device, s1, decomposer=decomposer)
        # Rewire the placement so some routed CZ lands on uncoupled qubits:
        # slot 0 keeps its physical qubit, slot 1 jumps to the far corner.
        nodes = sorted(device.topology.graph.nodes)
        far = [q for q in nodes if not device.topology.are_connected(
            compiled.physical_qubits[0], q) and q != compiled.physical_qubits[0]]
        broken = list(compiled.physical_qubits)
        broken[1] = far[-1]
        findings = check_connectivity(compiled.circuit, device, broken)
        assert findings
        assert all(f.check == "connectivity" for f in findings)
        assert "not coupled" in findings[0].message

    def test_unregistered_gate_type(self, device, s1, decomposer):
        compiled = compile_circuit(ghz_circuit(2), device, s1, decomposer=decomposer)
        findings = check_gate_types_registered(
            compiled.circuit, device, [*compiled.emitted_gate_types, "xy(0.123456)"]
        )
        assert [f for f in findings if "xy(0.123456)" in f.message]

    def test_instruction_set_membership_violation(self, s1):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.swap(0, 1)  # SWAP is outside the single-type S1 set
        findings = check_instruction_set_membership(circuit, s1)
        assert findings and findings[0].check == "instruction-set"

    def test_overlapping_moment(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        moments = [list(circuit)]  # force both CNOTs into one "moment"
        findings = check_moment_disjointness(moments)
        assert findings and findings[0].check == "moment-disjoint"

    def test_qubit_bounds_violation(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        # Bypass append-time validation: smuggle an out-of-register op in
        # through the private list, exactly what a buggy pass could do.
        wide = QuantumCircuit(3)
        wide.cx(1, 2)
        circuit._operations.extend(wide.operations)
        findings = check_qubit_bounds(circuit)
        assert findings and findings[0].check == "qubit-bounds"

    def test_duplicate_placement(self, device, s1, decomposer):
        compiled = compile_circuit(ghz_circuit(3), device, s1, decomposer=decomposer)
        broken = list(compiled.physical_qubits)
        broken[1] = broken[0]
        damaged = dataclasses.replace(compiled, physical_qubits=tuple(broken))
        findings = check_mapping_consistency(damaged, device)
        assert [f for f in findings if "duplicate" in f.message]

    def test_off_device_placement(self, device, s1, decomposer):
        compiled = compile_circuit(ghz_circuit(2), device, s1, decomposer=decomposer)
        broken = list(compiled.physical_qubits)
        broken[0] = max(device.topology.graph.nodes) + 100
        damaged = dataclasses.replace(compiled, physical_qubits=tuple(broken))
        findings = check_mapping_consistency(damaged, device)
        assert [f for f in findings if "not" in f.message and "functional" in f.message]

    def test_overlapping_schedule(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        ops = list(circuit)
        schedule = Schedule(
            operations=[
                ScheduledOperation(ops[0], start=0.0, duration=25.0),
                ScheduledOperation(ops[1], start=10.0, duration=25.0),  # overlaps
            ],
            total_duration=35.0,
        )
        findings = check_schedule(schedule, num_qubits=1)
        assert [f for f in findings if "overlap" in f.message]

    def test_schedule_tolerates_float_slack(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        circuit.h(0)
        ops = list(circuit)
        schedule = Schedule(
            operations=[
                ScheduledOperation(ops[0], start=0.0, duration=25.0),
                ScheduledOperation(
                    ops[1], start=25.0 - SCHEDULE_TIME_ATOL / 2, duration=25.0
                ),
            ],
            total_duration=50.0,
        )
        assert check_schedule(schedule, num_qubits=1) == []


class _SabotageRoutingPass(CompilerPass):
    """Moves a routed two-qubit gate onto two uncoupled physical qubits."""

    name = "sabotage"

    def run(self, context: PassContext) -> None:
        placement = list(context.physical_qubits)
        nodes = sorted(context.device.topology.graph.nodes)
        far = [
            q
            for q in nodes
            if q not in placement
            and not context.device.topology.are_connected(placement[0], q)
        ]
        placement[1] = far[-1]
        context.physical_qubits = tuple(placement)


class TestPassVerificationHook:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(VERIFY_PASSES_ENV_VAR, raising=False)
        assert verify_passes_enabled() is False

    def test_flag_parsing(self, monkeypatch):
        monkeypatch.setenv(VERIFY_PASSES_ENV_VAR, "on")
        assert verify_passes_enabled() is True
        monkeypatch.setenv(VERIFY_PASSES_ENV_VAR, "0")
        assert verify_passes_enabled() is False

    def test_broken_pass_is_named(self, monkeypatch, device, s1, decomposer):
        """The hook attributes the violation to the pass that caused it."""
        monkeypatch.setenv(VERIFY_PASSES_ENV_VAR, "1")
        device.ensure_gate_types(s1.type_keys(), scale=1.0)
        config = available_pipelines()["default"]
        manager = config.build()
        manager.passes.append(_SabotageRoutingPass())  # after the full pipeline
        context = PassContext(
            circuit=ghz_circuit(3),
            device=device,
            instruction_set=s1,
            decomposer=decomposer,
        )
        with pytest.raises(PassVerificationError) as excinfo:
            manager.run(context)
        error = excinfo.value
        assert error.pass_name == "sabotage"
        assert error.findings and error.findings[0].check == "connectivity"
        assert "sabotage" in str(error)

    def test_healthy_pipeline_passes_under_hook(self, monkeypatch, device, s1, decomposer):
        monkeypatch.setenv(VERIFY_PASSES_ENV_VAR, "1")
        compiled = compile_circuit(ghz_circuit(3), device, s1, decomposer=decomposer)
        assert verify_compiled_circuit(compiled, device, s1) == []

    def test_hook_does_not_perturb_compilation(self, monkeypatch, s1, decomposer):
        """Verified and unverified compiles are bit-identical (RNG-free checks)."""
        monkeypatch.delenv(VERIFY_PASSES_ENV_VAR, raising=False)
        plain = compile_circuit(
            ghz_circuit(4), sycamore_device(), s1, decomposer=decomposer,
            pipeline="scheduled",
        )
        monkeypatch.setenv(VERIFY_PASSES_ENV_VAR, "1")
        verified = compile_circuit(
            ghz_circuit(4), sycamore_device(), s1, decomposer=decomposer,
            pipeline="scheduled",
        )
        assert circuit_fingerprint(plain.circuit) == circuit_fingerprint(verified.circuit)
        assert plain.physical_qubits == verified.physical_qubits
        assert plain.emitted_gate_types == verified.emitted_gate_types
        assert plain.schedule_duration == verified.schedule_duration
        for a, b in zip(plain.circuit, verified.circuit):
            assert np.array_equal(a.gate.matrix, b.gate.matrix)
