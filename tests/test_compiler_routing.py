"""Tests for SWAP-insertion routing and the one-qubit optimisation passes."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import Layout
from repro.compiler.onequbit import (
    count_single_qubit_layers,
    merge_single_qubit_gates,
    strip_identities,
)
from repro.compiler.passes import map_and_route
from repro.compiler.routing import route_circuit
from repro.compiler.scheduling import asap_schedule
from repro.devices.device import Device, GateErrorDistribution
from repro.devices.sycamore import sycamore_device
from repro.devices.topology import line_topology
from repro.gates.unitary import allclose_up_to_global_phase, random_su4
from repro.simulators.noise_model import NoiseModel
from repro.simulators.statevector import simulate_statevector
from repro.metrics.distributions import permute_distribution
from repro.simulators.statevector import probabilities


def line_device(num_qubits: int = 4) -> Device:
    device = Device(
        name="line",
        topology=line_topology(num_qubits),
        noise_model=NoiseModel(),
        two_qubit_error_distribution=GateErrorDistribution(kind="fixed", mean=0.01),
        seed=0,
    )
    device.register_gate_type("cz")
    return device


def identity_layout(num_qubits: int) -> Layout:
    return Layout(
        physical_qubits=tuple(range(num_qubits)),
        program_to_slot={q: q for q in range(num_qubits)},
    )


class TestRouting:
    def test_adjacent_operations_pass_through(self):
        device = line_device(3)
        circuit = QuantumCircuit(3).cz(0, 1).cz(1, 2)
        routed = route_circuit(circuit, device, identity_layout(3))
        assert routed.num_swaps == 0
        assert len(routed.circuit) == 2

    def test_distant_operation_requires_swaps(self):
        device = line_device(4)
        circuit = QuantumCircuit(4).cz(0, 3)
        routed = route_circuit(circuit, device, identity_layout(4))
        assert routed.num_swaps >= 2
        # Every emitted two-qubit operation must act on adjacent physical qubits.
        for operation in routed.circuit.two_qubit_operations():
            a, b = operation.qubits
            assert device.topology.are_connected(
                routed.physical_qubits[a], routed.physical_qubits[b]
            )

    def test_final_mapping_tracks_swaps(self):
        device = line_device(3)
        circuit = QuantumCircuit(3).cz(0, 2)
        routed = route_circuit(circuit, device, identity_layout(3))
        assert routed.num_swaps >= 1
        assert sorted(routed.final_mapping.keys()) == [0, 1, 2]
        assert sorted(routed.final_mapping.values()) == [0, 1, 2]

    def test_routed_circuit_equivalent_to_original_after_permutation(self, rng):
        """Routing preserves semantics once the final qubit permutation is undone."""
        device = line_device(4)
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.unitary(random_su4(rng), [0, 3], name="su4")
        circuit.cz(1, 2)
        routed = route_circuit(circuit, device, identity_layout(4))
        original_probs = probabilities(simulate_statevector(circuit))
        routed_probs = probabilities(simulate_statevector(routed.circuit))
        order = [routed.final_mapping[q] for q in range(4)]
        assert np.allclose(permute_distribution(routed_probs, order), original_probs, atol=1e-9)

    def test_slot_permutation_helper(self):
        device = line_device(3)
        circuit = QuantumCircuit(3).cz(0, 2)
        routed = route_circuit(circuit, device, identity_layout(3))
        permutation = routed.slot_permutation()
        assert sorted(permutation) == [0, 1, 2]

    def test_map_and_route_on_sycamore(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        circuit = QuantumCircuit(5).cz(0, 4).cz(1, 3).cz(0, 2)
        routed = map_and_route(circuit, device, ["syc"])
        for operation in routed.circuit.two_qubit_operations():
            if operation.gate.name == "swap":
                continue
            a, b = operation.qubits
            assert device.topology.are_connected(
                routed.physical_qubits[a], routed.physical_qubits[b]
            )


class TestSingleQubitOptimisation:
    def test_merge_reduces_gate_count_and_preserves_unitary(self):
        circuit = QuantumCircuit(2)
        circuit.rz(0.3, 0).rx(0.2, 0).ry(0.7, 0).cz(0, 1).rz(0.1, 1).rz(0.2, 1)
        merged = merge_single_qubit_gates(circuit)
        assert count_single_qubit_layers(merged) <= 2
        assert allclose_up_to_global_phase(merged.to_unitary(), circuit.to_unitary(), atol=1e-6)

    def test_merge_drops_identity_products(self):
        circuit = QuantumCircuit(1).rz(0.4, 0).rz(-0.4, 0)
        merged = merge_single_qubit_gates(circuit)
        assert len(merged) == 0

    def test_merge_keeps_two_qubit_gates_in_order(self):
        circuit = QuantumCircuit(2).cz(0, 1).rz(0.1, 0).cz(0, 1)
        merged = merge_single_qubit_gates(circuit)
        names = [op.gate.name for op in merged]
        assert names.count("cz") == 2

    def test_strip_identities(self):
        circuit = QuantumCircuit(2).rz(0.0, 0).cz(0, 1)
        stripped = strip_identities(circuit)
        assert [op.gate.name for op in stripped] == ["cz"]


class TestScheduling:
    def test_schedule_times_and_duration(self):
        model = NoiseModel(single_qubit_duration=10.0, two_qubit_duration=100.0)
        circuit = QuantumCircuit(2).h(0).h(1).cz(0, 1).h(0)
        schedule = asap_schedule(circuit, model)
        assert schedule.total_duration == pytest.approx(10 + 100 + 10)
        assert schedule.operations[2].start == pytest.approx(10.0)
        assert schedule.qubit_busy_time(0) == pytest.approx(120.0)
        assert schedule.qubit_idle_time(1) == pytest.approx(10.0)
