"""Tests for the calibration-overhead model and tradeoff analysis (Section IX)."""

import pytest

from repro.calibration.model import (
    CalibrationModel,
    calibration_savings_factor,
    continuous_family_equivalent_types,
)
from repro.calibration.tradeoff import (
    diminishing_returns_size,
    reliability_improvement,
    tradeoff_curve,
)


class TestCalibrationModel:
    def test_circuit_count_scales_linearly(self):
        model = CalibrationModel()
        base = model.num_calibration_circuits(1, 10)
        assert model.num_calibration_circuits(2, 10) == 2 * base
        assert model.num_calibration_circuits(1, 20) == 2 * base
        assert model.num_calibration_circuits(0, 10) == 0

    def test_negative_counts_rejected(self):
        model = CalibrationModel()
        with pytest.raises(ValueError):
            model.num_calibration_circuits(-1, 5)
        with pytest.raises(ValueError):
            model.calibration_time_hours(-2)

    def test_paper_scale_order_of_magnitude(self):
        """~1e7 circuits to calibrate 10 gate types on a 54-qubit device (Figure 11a)."""
        model = CalibrationModel()
        circuits = model.circuits_for_device(10, 54)
        assert 3e6 < circuits < 3e7

    def test_thousand_qubit_device_needs_nearly_a_billion_circuits(self):
        model = CalibrationModel()
        circuits = model.circuits_for_device(300, 1000)
        assert circuits > 1e8

    def test_calibration_time_is_linear_in_types(self):
        model = CalibrationModel()
        assert model.calibration_time_hours(4) - model.calibration_time_hours(3) == pytest.approx(
            model.hours_per_gate_type
        )
        assert model.calibration_time_hours(0) == pytest.approx(model.base_hours)

    def test_continuous_family_equivalent_types(self):
        assert continuous_family_equivalent_types() == 361
        assert continuous_family_equivalent_types(10, 1) == 10

    def test_savings_factor_is_about_two_orders_of_magnitude(self):
        """The paper's headline: 4-8 types save ~100x calibration vs the continuous family."""
        model = CalibrationModel()
        for num_types in (4, 8):
            factor = calibration_savings_factor(model, num_types)
            assert 40 <= factor <= 400

    def test_savings_factor_validation(self):
        with pytest.raises(ValueError):
            calibration_savings_factor(CalibrationModel(), 0)


class TestTradeoffAnalysis:
    def make_points(self):
        reliability = {
            2: {"qv": 0.66},
            4: {"qv": 0.70},
            6: {"qv": 0.71},
            8: {"qv": 0.712},
        }
        baseline = {"qv": 0.65}
        return tradeoff_curve(reliability, baseline)

    def test_reliability_improvement(self):
        assert reliability_improvement(0.5, 0.6) == pytest.approx(0.2)
        assert reliability_improvement(0.0, 0.6) == 0.0

    def test_tradeoff_curve_structure(self):
        points = self.make_points()
        assert [p.num_gate_types for p in points] == [2, 4, 6, 8]
        assert points[0].calibration_hours < points[-1].calibration_hours
        assert points[0].calibration_circuits < points[-1].calibration_circuits
        assert points[1].reliability_improvement["qv"] == pytest.approx((0.70 - 0.65) / 0.65)

    def test_diminishing_returns_sweet_spot(self):
        points = self.make_points()
        sweet_spot = diminishing_returns_size(points, "qv", tolerance=0.02)
        assert sweet_spot in (4, 6)

    def test_diminishing_returns_requires_points(self):
        with pytest.raises(ValueError):
            diminishing_returns_size([], "qv")
