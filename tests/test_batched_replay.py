"""Batched superoperator replay: one vectorised pass per error-scale sweep.

The equivalence contracts the batching layer stakes its speedup on:

* **kernel level** -- ``apply_superop_program_batch`` over a stacked
  ``(B, 2^n, 2^n)`` rho tensor matches ``B`` sequential
  ``apply_superop_program`` replays to ``<= 1e-10``, for B in {1, 2, 7},
  both for a batch of same-structure programs (the error-scale-sweep
  case) and for one shared program broadcast over many initial states;
* **structure discipline** -- programs whose fused groups differ in
  qubit supports refuse to batch (``ValueError``), and the working-set
  cap (``REPRO_SIM_BATCH_MAX_BYTES``) bounds group sizes;
* **backend level** -- ``DensityMatrixBackend.run_batch`` equals per-
  program ``run`` and costs ONE invocation per vectorised pass; under
  ``REPRO_SIM_KERNEL=reference`` it degrades to sequential ``run``
  calls bit-identically;
* **engine level** -- a ``run_study`` with ``options.batch != 1``
  produces a report bit-identical to the unbatched run, lands results
  under the *identical* per-job sim-cache keys, and a warm batched
  re-run performs zero backend invocations.
"""

from __future__ import annotations

import numpy as np
import pytest
import test_superop

from repro.applications import qv_circuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import full_fsim_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import (
    batch_signature,
    clear_experiment_caches,
    group_prepared_for_batch,
    run_study,
)
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.array_ops import array_backend_stats, reset_array_backend_stats
from repro.simulators.backend import (
    SIM_KERNEL_ENV_VAR,
    backend_invocation_counts,
    reset_backend_invocation_counts,
    resolve_backend,
)
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import build_noise_program
from repro.simulators.superop import (
    SIM_BATCH_MAX_BYTES_ENV_VAR,
    apply_superop_program,
    apply_superop_program_batch,
    batch_superop_programs,
    max_batch_items,
    superop_program_for,
    superop_structure_key,
)

TOLERANCE = test_superop.TOLERANCE


def sweep_programs(num_qubits: int, batch: int, seed: int = 3):
    """``batch`` programs of one circuit under scaled noise strengths.

    The error-scale-sweep shape: identical circuit and channel structure,
    channel tensors differing only through the noise strengths -- so the
    lowered programs share :func:`superop_structure_key`.
    """
    circuit = test_superop.random_circuit(
        num_qubits, num_operations=4 * num_qubits + 4, seed=seed
    )
    programs = []
    for index in range(batch):
        scale = 1.0 + 0.5 * index
        model = NoiseModel.uniform(
            num_qubits,
            two_qubit_error=0.01 * scale,
            single_qubit_error=0.002 * scale,
            t1=20_000.0,
            t2=15_000.0,
        )
        programs.append(build_noise_program(circuit, model))
    return programs


class TestKernelEquivalence:
    @pytest.mark.parametrize("batch", [1, 2, 7])
    @pytest.mark.parametrize("num_qubits", [2, 3])
    def test_batched_matches_sequential_fused_replay(self, num_qubits, batch):
        programs = sweep_programs(num_qubits, batch, seed=11 + num_qubits)
        superops = [superop_program_for(program) for program in programs]
        assert len({superop_structure_key(sp) for sp in superops}) == 1
        rhos = np.stack(
            [
                test_superop.random_density_matrix(num_qubits, seed=40 + index)
                for index in range(batch)
            ]
        )
        sequential = np.stack(
            [apply_superop_program(sp, rho) for sp, rho in zip(superops, rhos)]
        )
        batched = apply_superop_program_batch(batch_superop_programs(superops), rhos)
        assert batched.shape == sequential.shape
        assert np.max(np.abs(batched - sequential)) <= TOLERANCE

    @pytest.mark.parametrize("batch", [1, 2, 7])
    def test_shared_program_broadcast_over_states(self, batch):
        program = test_superop.random_program(3, seed=9, noisy=True)
        superop = superop_program_for(program)
        rhos = np.stack(
            [
                test_superop.random_density_matrix(3, seed=70 + index)
                for index in range(batch)
            ]
        )
        sequential = np.stack([apply_superop_program(superop, rho) for rho in rhos])
        batched = apply_superop_program_batch(superop, rhos)
        assert np.max(np.abs(batched - sequential)) <= TOLERANCE

    def test_batched_pass_is_recorded_per_backend(self):
        reset_array_backend_stats()
        program = test_superop.random_program(2, seed=5, noisy=True)
        rhos = np.stack(
            [test_superop.random_density_matrix(2, seed=i) for i in range(3)]
        )
        apply_superop_program_batch(superop_program_for(program), rhos)
        stats = array_backend_stats()
        assert stats["numpy"]["batched_passes"] == 1
        assert stats["numpy"]["batched_items"] == 3

    def test_structure_mismatch_refuses_to_batch(self):
        a = superop_program_for(test_superop.random_program(3, seed=1, noisy=True))
        b = superop_program_for(test_superop.random_program(3, seed=2, noisy=True))
        assert superop_structure_key(a) != superop_structure_key(b)
        with pytest.raises(ValueError, match="structure"):
            batch_superop_programs([a, b])

    def test_wrong_rho_stack_shape_rejected(self):
        programs = sweep_programs(2, 3, seed=21)
        batched = batch_superop_programs(
            [superop_program_for(program) for program in programs]
        )
        rhos = np.stack(
            [test_superop.random_density_matrix(2, seed=i) for i in range(2)]
        )
        with pytest.raises(ValueError):
            apply_superop_program_batch(batched, rhos)


class TestMemoryCap:
    def test_max_batch_items_respects_env_cap(self, monkeypatch):
        # One 3-qubit rho stack item costs 2 buffers x 16 bytes x 4^3.
        per_item = 2 * 16 * 4**3
        monkeypatch.setenv(SIM_BATCH_MAX_BYTES_ENV_VAR, str(4 * per_item))
        assert max_batch_items(3) == 4
        assert max_batch_items(3, 2) == 2  # the batch= knob tightens it
        assert max_batch_items(3, 100) == 4  # ... but never exceeds the cap
        monkeypatch.setenv(SIM_BATCH_MAX_BYTES_ENV_VAR, "1")
        assert max_batch_items(3) == 1  # cap below one item still progresses

    def test_invalid_env_cap_warns_and_defaults(self, monkeypatch):
        from repro.simulators.superop import (
            DEFAULT_SIM_BATCH_MAX_BYTES,
            sim_batch_max_bytes,
        )

        monkeypatch.setenv(SIM_BATCH_MAX_BYTES_ENV_VAR, "lots")
        with pytest.warns(RuntimeWarning, match=SIM_BATCH_MAX_BYTES_ENV_VAR):
            assert sim_batch_max_bytes() == DEFAULT_SIM_BATCH_MAX_BYTES


class TestBackendBatch:
    def test_run_batch_matches_run_with_one_invocation(self):
        backend = resolve_backend("density-matrix")
        options = SimulationOptions(shots=500, seed=3)
        programs = sweep_programs(3, 4, seed=17)
        reset_backend_invocation_counts()
        sequential = [backend.run(program, options) for program in programs]
        assert backend_invocation_counts()["density-matrix"] == 4
        reset_backend_invocation_counts()
        batched = backend.run_batch(programs, options)
        assert backend_invocation_counts()["density-matrix"] == 1
        for got, want in zip(batched, sequential):
            assert np.max(np.abs(got - want)) <= TOLERANCE

    def test_reference_kernel_falls_back_to_sequential_runs(self, monkeypatch):
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        backend = resolve_backend("density-matrix")
        options = SimulationOptions(shots=500, seed=3)
        programs = sweep_programs(2, 3, seed=23)
        assert not backend.supports_batched_run(programs[0], options)
        reset_backend_invocation_counts()
        batched = backend.run_batch(programs, options)
        assert backend_invocation_counts()["density-matrix"] == 3
        for got, program in zip(batched, programs):
            assert np.array_equal(got, backend.run(program, options))


def _sweep_study_kwargs(shared_decomposer):
    circuits = [qv_circuit(3, rng=np.random.default_rng(index)) for index in range(2)]
    instruction_sets = {
        "S1": single_gate_set("S1", vendor="google"),
        "FullfSim": full_fsim_set(),
        "FullfSim-2x": full_fsim_set(),
        "FullfSim-3x": full_fsim_set(),
    }
    return dict(
        application="qv",
        circuits=circuits,
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(5, "line", seed=13),
        instruction_sets=instruction_sets,
        error_scales={"FullfSim-2x": 2.0, "FullfSim-3x": 3.0},
        decomposer=shared_decomposer,
    )


def _rows(study):
    return [
        (name, result.metric_values, result.two_qubit_counts, result.swap_counts)
        for name, result in study.per_set.items()
    ]


class TestEngineBatching:
    def test_batched_study_bit_identical_with_identical_cache_keys(
        self, shared_decomposer
    ):
        kwargs = _sweep_study_kwargs(shared_decomposer)
        options = dict(shots=900, seed=5)

        from repro.experiments import engine

        captured = {}
        original_store = engine.store_simulation

        def capture_keys(label):
            def store(prepared, vector, sim_disk=None):
                captured.setdefault(label, {})[prepared.job] = prepared.cache_key
                return original_store(prepared, vector, sim_disk)

            return store

        clear_experiment_caches()
        reset_backend_invocation_counts()
        engine.store_simulation = capture_keys("sequential")
        try:
            sequential = run_study(**kwargs, options=SimulationOptions(**options))
        finally:
            engine.store_simulation = original_store
        sequential_invocations = sum(backend_invocation_counts().values())

        clear_experiment_caches()
        reset_backend_invocation_counts()
        reset_array_backend_stats()
        engine.store_simulation = capture_keys("batched")
        try:
            batched = run_study(
                **kwargs, options=SimulationOptions(**options, batch=0)
            )
        finally:
            engine.store_simulation = original_store
        batched_invocations = sum(backend_invocation_counts().values())

        # Bit-identical report, identical per-job cache keys, fewer
        # backend passes (one per structure group instead of one per job).
        assert _rows(batched) == _rows(sequential)
        assert captured["batched"] == captured["sequential"]
        assert batched_invocations < sequential_invocations
        assert array_backend_stats()["numpy"]["batched_passes"] >= 1

    def test_warm_batched_rerun_is_free_and_identical(self, shared_decomposer):
        kwargs = _sweep_study_kwargs(shared_decomposer)
        options = dict(shots=901, seed=6)
        clear_experiment_caches()
        cold = run_study(**kwargs, options=SimulationOptions(**options, batch=0))
        reset_backend_invocation_counts()
        warm = run_study(**kwargs, options=SimulationOptions(**options, batch=0))
        assert sum(backend_invocation_counts().values()) == 0
        assert _rows(warm) == _rows(cold)
        # ... and a warm *sequential* run reuses the batched entries too:
        # batch is an execution strategy, not a cache-key component.
        reset_backend_invocation_counts()
        sequential = run_study(**kwargs, options=SimulationOptions(**options))
        assert sum(backend_invocation_counts().values()) == 0
        assert _rows(sequential) == _rows(cold)

    def test_batch_knob_caps_group_sizes(self, shared_decomposer, monkeypatch):
        kwargs = _sweep_study_kwargs(shared_decomposer)
        clear_experiment_caches()
        reset_array_backend_stats()
        run_study(**kwargs, options=SimulationOptions(shots=902, seed=7, batch=2))
        stats = array_backend_stats()["numpy"]
        # 3 same-structure jobs per circuit chunked at 2 -> groups of 2
        # and 1; only the pairs run vectorised passes.
        assert stats["batched_passes"] >= 1
        assert all(
            items <= 2 for items in [stats["batched_items"] // stats["batched_passes"]]
        )

    def test_reference_kernel_batched_study_identical_to_unbatched(
        self, shared_decomposer, monkeypatch
    ):
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        kwargs = _sweep_study_kwargs(shared_decomposer)
        options = dict(shots=903, seed=8)
        clear_experiment_caches()
        sequential = run_study(**kwargs, options=SimulationOptions(**options))
        clear_experiment_caches()
        reset_array_backend_stats()
        batched = run_study(**kwargs, options=SimulationOptions(**options, batch=0))
        # supports_batched_run is False on the reference kernel, so no
        # vectorised pass ever runs and results stay byte-identical.
        assert array_backend_stats() == {}
        assert _rows(batched) == _rows(sequential)


class TestGrouping:
    def test_batch_signature_groups_only_same_structure(self, shared_decomposer):
        from repro.experiments.engine import ExperimentJob, prepare_job

        device = synthetic_device(5, "line", seed=13)
        circuit = qv_circuit(3, rng=np.random.default_rng(0))
        options = SimulationOptions(shots=700, seed=4, batch=0)
        sets = {
            "FullfSim": full_fsim_set(),
            "FullfSim-2x": full_fsim_set(),
        }
        units = [
            prepare_job(
                ExperimentJob(
                    set_name=name, circuit_index=0, error_scale=scale
                ),
                circuit,
                device,
                sets[name],
                decomposer=shared_decomposer,
                options=options,
            )
            for name, scale in (("FullfSim", 1.0), ("FullfSim-2x", 2.0))
        ]
        signatures = [batch_signature(unit) for unit in units]
        assert signatures[0] is not None
        assert signatures[0] == signatures[1]
        groups = group_prepared_for_batch(units)
        assert [len(group) for group in groups] == [2]
