"""Tests for the command-line interface (fast subcommands only)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_paper_scale_flag_parsed(self):
        args = build_parser().parse_args(["fig6", "--paper-scale"])
        assert args.paper_scale is True

    def test_design_defaults(self):
        args = build_parser().parse_args(["design"])
        assert args.grid == 4
        assert "qv" in args.applications

    def test_calibration_defaults(self):
        args = build_parser().parse_args(["calibration"])
        assert args.gate_types == 4
        assert args.horizon == pytest.approx(168.0)


class TestFastCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "ok" in output and "FAILED" not in output

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        output = capsys.readouterr().out
        assert "G7" in output and "FullfSim" in output

    def test_fig11a(self, capsys):
        assert main(["fig11a"]) == 0
        output = capsys.readouterr().out
        assert "Figure 11a" in output
        assert "1000q" in output

    def test_apps(self, capsys):
        assert main(["apps"]) == 0
        output = capsys.readouterr().out
        for name in ("qv", "qaoa", "fh", "qft", "adder"):
            assert name in output

    def test_calibration(self, capsys):
        code = main([
            "calibration", "--gate-types", "2", "--edges", "3", "--horizon", "48",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "periodic" in output and "never" in output

    def test_design_small(self, capsys):
        code = main([
            "design", "--grid", "3", "--unitaries", "1", "--max-types", "2",
            "--max-layers", "3", "--applications", "qaoa", "swap",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "knee of the curve" in output


class TestSimulatorCommands:
    def test_simulators_listing(self, capsys):
        assert main(["simulators"]) == 0
        output = capsys.readouterr().out
        for name in ("density-matrix", "trajectory", "estimator", "auto"):
            assert name in output

    def test_simulators_listing_reports_active_kernel(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert main(["simulators"]) == 0
        assert "active kernel: fused" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_SIM_KERNEL", "reference")
        assert main(["simulators"]) == 0
        assert "active kernel: reference" in capsys.readouterr().out

    def test_backend_flag_accepted(self):
        args = build_parser().parse_args(["fig10", "--backend", "trajectory"])
        assert args.backend == "trajectory"

    def test_backend_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--backend", "no-such-backend"])

    def test_cache_stats_surfaces_in_process_caches(self, capsys, monkeypatch):
        # No disk cache configured: the in-process section (including the
        # previously invisible ideal-distribution cache) still renders.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert main(["cache", "stats"]) == 0
        output = capsys.readouterr().out
        assert "no disk compilation/simulation cache configured" in output
        assert "ideal distributions" in output
        assert "simulation results (memory)" in output
        assert "noise programs" in output
        assert "autotuner verdicts" in output
        # Every in-process cache reports its LRU bound alongside counters.
        assert "max_entries" in output

    def test_cache_stats_with_cache_dir_reports_sim_counters(self, capsys, tmp_path):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "cc")]) == 0
        output = capsys.readouterr().out
        assert "sim_hits" in output and "sim_writes" in output
        assert "ideal distributions" in output


class TestPipelineFlags:
    def test_pipeline_auto_accepted(self):
        args = build_parser().parse_args(["fig10", "--pipeline", "auto"])
        assert args.pipeline == "auto"

    def test_pipeline_unknown_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10", "--pipeline", "no-such-pipeline"])

    def test_pipelines_stats_view(self, capsys):
        assert main(["pipelines", "--stats"]) == 0
        output = capsys.readouterr().out
        assert "Per-pass rewrite statistics" in output
        # Every registered pipeline gets a per-pass table...
        for name in ("default", "optimized", "fused", "euler-zxz"):
            assert f"pipeline: {name}" in output
        for pass_name in ("layout", "routing", "nuop", "merge-1q"):
            assert pass_name in output
        # ...and the autotuner's verdict closes the report.
        assert "auto picks:" in output


class TestCheckCommand:
    def test_defaults_select_all_prongs(self):
        args = build_parser().parse_args(["check"])
        assert args.source is False and args.circuits is False
        assert args.scales == (1.0, 2.0, 3.0)
        assert args.qubits == 2

    def test_source_prong_clean(self, capsys):
        assert main(["check", "--source"]) == 0
        output = capsys.readouterr().out
        assert "[source] clean" in output
        assert "all prongs clean" in output

    def test_source_prong_json(self, capsys):
        import json

        assert main(["check", "--source", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["findings"] == 0
        assert report["prongs"] == {"source": []}

    def test_dirty_tree_sets_exit_code(self, capsys, tmp_path):
        (tmp_path / "bad.py").write_text(
            'import os\nVALUE = os.environ.get("X")\n', encoding="utf-8"
        )
        assert main(["check", "--source", "--root", str(tmp_path)]) == 1
        output = capsys.readouterr().out
        assert "env-policy" in output
        assert "1 finding(s)" in output

    def test_restricted_circuit_sweep(self, capsys):
        code = main([
            "check", "--circuits", "--device", "sycamore", "--sets", "S1",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "[circuits] clean" in output

    def test_restricted_program_sweep(self, capsys):
        code = main([
            "check", "--programs", "--device", "aspen-8", "--sets", "S2",
            "--scales", "1.0", "--qubits", "2",
        ])
        assert code == 0
        assert "[programs] clean" in capsys.readouterr().out

    def test_unknown_set_rejected(self):
        with pytest.raises(SystemExit):
            main(["check", "--circuits", "--device", "sycamore", "--sets", "NoSuchSet"])
