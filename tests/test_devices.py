"""Tests for the generic Device model and the Aspen-8 / Sycamore instances."""

import numpy as np
import pytest

from repro.devices.aspen8 import (
    CZ_KEY,
    FIRST_RING_CZ_FIDELITY,
    FIRST_RING_XY_FIDELITY,
    XY_PI_KEY,
    aspen8_device,
)
from repro.devices.device import Device, GateErrorDistribution
from repro.devices.sycamore import sycamore_device
from repro.devices.topology import line_topology
from repro.simulators.noise_model import NoiseModel


class TestGateErrorDistribution:
    def test_fixed_distribution(self):
        dist = GateErrorDistribution(kind="fixed", mean=0.01)
        rng = np.random.default_rng(0)
        assert dist.sample(rng) == 0.01
        assert dist.expected() == 0.01

    def test_normal_distribution_clipping(self):
        dist = GateErrorDistribution(kind="normal", mean=0.005, std=0.1, minimum=0.001, maximum=0.02)
        rng = np.random.default_rng(0)
        samples = [dist.sample(rng) for _ in range(50)]
        assert all(0.001 <= s <= 0.02 for s in samples)
        assert dist.expected() == 0.005

    def test_uniform_distribution_range(self):
        dist = GateErrorDistribution(kind="uniform", minimum=0.01, maximum=0.05)
        rng = np.random.default_rng(0)
        samples = [dist.sample(rng) for _ in range(50)]
        assert all(0.01 <= s <= 0.05 for s in samples)
        assert dist.expected() == pytest.approx(0.03)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            GateErrorDistribution(kind="exotic").sample(np.random.default_rng(0))
        with pytest.raises(ValueError):
            GateErrorDistribution(kind="exotic").expected()


class TestDevice:
    def build_device(self, noise_variation: bool = True) -> Device:
        return Device(
            name="toy",
            topology=line_topology(4),
            noise_model=NoiseModel(),
            two_qubit_error_distribution=GateErrorDistribution(
                kind="normal", mean=0.01, std=0.002, minimum=0.001, maximum=0.05
            ),
            noise_variation=noise_variation,
            seed=3,
        )

    def test_register_gate_type_covers_all_edges(self):
        device = self.build_device()
        device.register_gate_type("cz")
        assert "cz" in device.registered_gate_types
        for edge in device.topology.edges:
            assert 0.9 < device.gate_fidelity("cz", edge) < 1.0

    def test_register_with_measured_values(self):
        device = self.build_device()
        device.register_gate_type("cz", error_rates={(0, 1): 0.2})
        assert device.gate_fidelity("cz", (0, 1)) == pytest.approx(0.8)
        assert device.gate_fidelity("cz", (1, 0)) == pytest.approx(0.8)

    def test_no_noise_variation_uses_mean(self):
        device = self.build_device(noise_variation=False)
        device.register_gate_type("cz")
        fidelities = set(round(f, 9) for f in device.edge_fidelities("cz").values())
        assert fidelities == {round(1 - 0.01, 9)}

    def test_noise_variation_differs_across_edges(self):
        device = self.build_device(noise_variation=True)
        device.register_gate_type("cz")
        fidelities = list(device.edge_fidelities("cz").values())
        assert len(set(round(f, 9) for f in fidelities)) > 1

    def test_error_scale(self):
        device = self.build_device(noise_variation=False)
        device.register_gate_type("scaled", scale=2.0)
        assert device.gate_fidelity("scaled", (0, 1)) == pytest.approx(1 - 0.02)

    def test_ensure_gate_types_idempotent(self):
        device = self.build_device()
        device.ensure_gate_types(["a", "b"])
        before = device.edge_fidelities("a")
        device.ensure_gate_types(["a"])
        assert device.edge_fidelities("a") == before

    def test_average_two_qubit_error(self):
        device = self.build_device(noise_variation=False)
        assert device.average_two_qubit_error() == pytest.approx(0.01)
        device.register_gate_type("cz")
        assert device.average_two_qubit_error(["cz"]) == pytest.approx(0.01)

    def test_readout_errors_for(self):
        device = self.build_device()
        device.noise_model.readout_error[2] = 0.07
        assert device.readout_errors_for([2, 3]) == [0.07, device.noise_model.default_readout_error]


class TestAspen8:
    def test_size_and_registered_types(self):
        device = aspen8_device()
        assert device.topology.num_qubits == 30
        assert CZ_KEY in device.registered_gate_types
        assert XY_PI_KEY in device.registered_gate_types

    def test_first_ring_measured_fidelities(self):
        device = aspen8_device()
        for edge, fidelity in FIRST_RING_CZ_FIDELITY.items():
            assert device.gate_fidelity(CZ_KEY, edge) == pytest.approx(fidelity)
        for edge, fidelity in FIRST_RING_XY_FIDELITY.items():
            assert device.gate_fidelity(XY_PI_KEY, edge) == pytest.approx(fidelity)

    def test_best_gate_varies_across_pairs(self):
        """Figure 3: the better of CZ / XY(pi) differs from edge to edge."""
        device = aspen8_device()
        winners = set()
        for edge in FIRST_RING_CZ_FIDELITY:
            cz = device.gate_fidelity(CZ_KEY, edge)
            xy = device.gate_fidelity(XY_PI_KEY, edge)
            winners.add("cz" if cz >= xy else "xy")
        assert winners == {"cz", "xy"}

    def test_arbitrary_xy_gates_in_95_99_range(self):
        device = aspen8_device()
        device.register_gate_type("xy(1.000000)")
        for fidelity in device.edge_fidelities("xy(1.000000)").values():
            assert 0.95 <= fidelity <= 0.99

    def test_no_variation_mode(self):
        device = aspen8_device(noise_variation=False)
        fidelities = set(round(f, 9) for f in device.edge_fidelities(CZ_KEY).values())
        assert len(fidelities) == 1


class TestSycamore:
    def test_size_and_grid(self):
        device = sycamore_device()
        assert device.topology.num_qubits == 54
        assert len(device.topology.edges) == 93

    def test_error_distribution_parameters(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        rates = [1 - f for f in device.edge_fidelities("syc").values()]
        assert 0.002 < np.mean(rates) < 0.012
        assert np.std(rates) > 0.0

    def test_custom_mean_error_rate(self):
        device = sycamore_device(mean_two_qubit_error=0.02, std_two_qubit_error=0.0)
        device.register_gate_type("syc")
        rates = [1 - f for f in device.edge_fidelities("syc").values()]
        assert np.allclose(rates, 0.02)

    def test_coherence_and_readout_populated(self):
        device = sycamore_device()
        assert device.noise_model.qubit_t1(10) == pytest.approx(15_000.0)
        assert device.noise_model.qubit_readout_error(10) == pytest.approx(0.031)
