"""Tests for parametric gate families and the Table I identities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import parametric, standard
from repro.gates.kak import is_locally_equivalent
from repro.gates.unitary import allclose_up_to_global_phase, is_unitary

ANGLES = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False)


class TestSingleQubitRotations:
    @given(theta=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_rotations_are_unitary(self, theta):
        assert is_unitary(parametric.rx(theta))
        assert is_unitary(parametric.ry(theta))
        assert is_unitary(parametric.rz(theta))

    def test_rotation_special_cases(self):
        assert allclose_up_to_global_phase(parametric.rx(np.pi), standard.X)
        assert allclose_up_to_global_phase(parametric.ry(np.pi), standard.Y)
        assert allclose_up_to_global_phase(parametric.rz(np.pi), standard.Z)
        assert np.allclose(parametric.rz(0.0), np.eye(2))

    @given(a=ANGLES, b=ANGLES)
    @settings(max_examples=20, deadline=None)
    def test_rz_composition(self, a, b):
        assert np.allclose(parametric.rz(a) @ parametric.rz(b), parametric.rz(a + b))

    @given(alpha=ANGLES, beta=ANGLES, lam=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_u3_is_unitary(self, alpha, beta, lam):
        assert is_unitary(parametric.u3(alpha, beta, lam))

    def test_u3_special_cases(self):
        assert np.allclose(parametric.u3(0, 0, 0), np.eye(2))
        assert allclose_up_to_global_phase(
            parametric.u3(np.pi / 2, 0, np.pi), standard.H
        )

    def test_phase_gate(self):
        assert np.allclose(parametric.phase_gate(np.pi), standard.Z)
        assert np.allclose(parametric.phase_gate(np.pi / 2), standard.S)


class TestTwoQubitFamilies:
    @given(theta=ANGLES, phi=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_fsim_is_unitary(self, theta, phi):
        assert is_unitary(parametric.fsim(theta, phi))

    @given(theta=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_xy_is_unitary(self, theta):
        assert is_unitary(parametric.xy(theta))

    def test_fsim_special_cases(self):
        assert np.allclose(parametric.fsim(0, 0), np.eye(4))
        assert is_locally_equivalent(parametric.fsim(0, np.pi), standard.CZ)
        assert is_locally_equivalent(parametric.fsim(np.pi / 2, 0), standard.ISWAP)
        assert is_locally_equivalent(parametric.fsim(np.pi / 4, 0), standard.SQRT_ISWAP)

    def test_xy_fsim_identity_from_table1(self):
        # XY(theta) = fSim(theta/2, 0) up to single-qubit rotations.
        for theta in (0.3, 1.1, 2.2, np.pi):
            assert is_locally_equivalent(parametric.xy(theta), parametric.fsim(theta / 2, 0))

    def test_xy_pi_is_iswap_class(self):
        assert is_locally_equivalent(parametric.xy(np.pi), standard.ISWAP)

    def test_cphase_identities(self):
        assert np.allclose(parametric.cphase(np.pi), standard.CZ)
        assert is_locally_equivalent(parametric.cphase(1.0), parametric.fsim(0, 1.0))

    def test_rzz_is_diagonal_and_unitary(self):
        matrix = parametric.rzz(0.37)
        assert is_unitary(matrix)
        assert np.allclose(matrix, np.diag(np.diagonal(matrix)))

    def test_rzz_special_angle_is_local(self):
        # exp(-i pi/2 ZZ) is Z(x)Z up to global phase, i.e. non-entangling.
        assert is_locally_equivalent(parametric.rzz(np.pi / 2), np.eye(4))

    def test_rxx_plus_ryy_matches_xy_class(self):
        beta = 0.73
        assert is_locally_equivalent(
            parametric.rxx_plus_ryy(beta), parametric.xy(2 * beta)
        )

    def test_canonical_gate_special_points(self):
        assert np.allclose(parametric.canonical_gate(0, 0, 0), np.eye(4))
        assert is_locally_equivalent(
            parametric.canonical_gate(np.pi / 4, 0, 0), standard.CZ
        )
        assert is_locally_equivalent(
            parametric.canonical_gate(np.pi / 4, np.pi / 4, 0), standard.ISWAP
        )
        assert is_locally_equivalent(
            parametric.canonical_gate(np.pi / 4, np.pi / 4, np.pi / 4), standard.SWAP
        )

    @given(theta=ANGLES, phi=ANGLES)
    @settings(max_examples=20, deadline=None)
    def test_fsim_phi_only_affects_11_phase(self, theta, phi):
        matrix = parametric.fsim(theta, phi)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert abs(matrix[3, 3]) == pytest.approx(1.0)
        assert matrix[3, 3] == pytest.approx(np.exp(-1j * phi))

    def test_controlled_rz_alias(self):
        assert np.allclose(parametric.controlled_rz(0.5), parametric.cphase(0.5))
