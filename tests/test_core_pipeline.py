"""Tests for the end-to-end compilation pipeline (Figure 1)."""

import numpy as np
import pytest

from repro.applications import qaoa_maxcut_circuit, qv_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.core.instruction_sets import (
    full_fsim_set,
    google_instruction_set,
    rigetti_instruction_set,
    single_gate_set,
)
from repro.core.pipeline import compile_circuit
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device
from repro.metrics.distributions import permute_distribution
from repro.simulators.statevector import ideal_probabilities


@pytest.fixture(scope="module")
def sycamore():
    return sycamore_device()


@pytest.fixture(scope="module")
def compiled_qv(shared_decomposer, sycamore):
    circuit = qv_circuit(3, rng=np.random.default_rng(2))
    compiled = compile_circuit(
        circuit, sycamore, google_instruction_set("G3"), decomposer=shared_decomposer
    )
    return circuit, compiled


class TestCompileCircuit:
    def test_compiled_gates_belong_to_instruction_set(self, compiled_qv, sycamore):
        _, compiled = compiled_qv
        allowed = set(google_instruction_set("G3").type_keys())
        for operation in compiled.circuit.two_qubit_operations():
            assert operation.gate.type_key in allowed

    def test_compiled_two_qubit_ops_respect_connectivity(self, compiled_qv, sycamore):
        _, compiled = compiled_qv
        for operation in compiled.circuit.two_qubit_operations():
            a, b = operation.qubits
            assert sycamore.topology.are_connected(
                compiled.physical_qubits[a], compiled.physical_qubits[b]
            )

    def test_compiled_circuit_preserves_semantics(self, compiled_qv):
        """With near-exact decompositions the compiled output distribution matches the ideal one."""
        circuit, compiled = compiled_qv
        ideal = ideal_probabilities(circuit)
        compiled_probs = ideal_probabilities(compiled.circuit)
        order = [compiled.final_mapping[q] for q in range(circuit.num_qubits)]
        realigned = permute_distribution(compiled_probs, order)
        assert np.allclose(realigned, ideal, atol=0.02)

    def test_bookkeeping_fields(self, compiled_qv):
        _, compiled = compiled_qv
        assert compiled.instruction_set_name == "G3"
        assert compiled.two_qubit_gate_count >= 3
        assert 0.9 <= compiled.average_decomposition_fidelity <= 1.0
        assert set(compiled.gate_type_usage) <= {"S1", "S2", "S3", "S4"}
        assert len(compiled.program_qubit_order()) == 3

    def test_single_type_set_uses_only_that_type(self, shared_decomposer, sycamore):
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(4))
        compiled = compile_circuit(
            circuit, sycamore, single_gate_set("S1"), decomposer=shared_decomposer
        )
        keys = {op.gate.type_key for op in compiled.circuit.two_qubit_operations()}
        assert keys <= set(single_gate_set("S1").type_keys())

    def test_continuous_family_registers_new_gate_types(self, shared_decomposer):
        device = sycamore_device()
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(5))
        compiled = compile_circuit(
            circuit, device, full_fsim_set(), decomposer=shared_decomposer
        )
        for operation in compiled.circuit.two_qubit_operations():
            assert operation.gate.type_key in device.registered_gate_types

    def test_rigetti_compilation_uses_measured_gate_types(self, shared_decomposer):
        device = aspen8_device()
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(6))
        compiled = compile_circuit(
            circuit, device, rigetti_instruction_set("R1"), decomposer=shared_decomposer
        )
        keys = {op.gate.type_key for op in compiled.circuit.two_qubit_operations()}
        assert keys <= {"cz", "xy(3.141593)"}

    def test_error_scale_degrades_registered_fidelity(self, shared_decomposer):
        device = sycamore_device(noise_variation=False)
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(7))
        compile_circuit(
            circuit,
            device,
            full_fsim_set(),
            decomposer=shared_decomposer,
            error_scale=2.0,
        )
        continuous_keys = [k for k in device.registered_gate_types if k.startswith("fsim")]
        assert continuous_keys
        expected_error = 2.0 * device.two_qubit_error_distribution.expected()
        for key in continuous_keys:
            rate = 1.0 - device.gate_fidelity(key, device.topology.edges[0])
            assert rate == pytest.approx(expected_error)

    def test_swap_free_when_program_fits_connectivity(self, shared_decomposer, sycamore):
        circuit = QuantumCircuit(2).cz(0, 1)
        compiled = compile_circuit(
            circuit, sycamore, single_gate_set("S3"), decomposer=shared_decomposer
        )
        assert compiled.num_swaps == 0

    def test_merge_single_qubit_flag(self, shared_decomposer, sycamore):
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(8))
        merged = compile_circuit(
            circuit, sycamore, single_gate_set("S3"), decomposer=shared_decomposer
        )
        unmerged = compile_circuit(
            circuit,
            sycamore,
            single_gate_set("S3"),
            decomposer=shared_decomposer,
            merge_single_qubit=False,
        )
        assert merged.circuit.num_single_qubit_gates() <= unmerged.circuit.num_single_qubit_gates()
        assert merged.two_qubit_gate_count == unmerged.two_qubit_gate_count
