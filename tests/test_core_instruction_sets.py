"""Tests for the gate-type and instruction-set catalogue (Table II)."""

import numpy as np
import pytest

from repro.core.gate_types import (
    S_TYPE_FSIM_PARAMETERS,
    S_TYPE_XY_ANGLES,
    all_google_types,
    all_rigetti_types,
    google_gate_type,
    rigetti_gate_type,
)
from repro.core.instruction_sets import (
    InstructionSet,
    full_fsim_set,
    full_xy_set,
    google_catalogue,
    google_instruction_set,
    rigetti_catalogue,
    rigetti_instruction_set,
    single_gate_set,
    table2_catalogue,
)
from repro.gates.kak import is_locally_equivalent
from repro.gates.parametric import fsim
from repro.gates.standard import CZ, ISWAP, SQRT_ISWAP, SWAP, SYC
from repro.gates.unitary import is_unitary


class TestGateTypes:
    def test_s_type_matrices_match_fsim_parameters(self):
        for label, (theta, phi) in S_TYPE_FSIM_PARAMETERS.items():
            gate_type = google_gate_type(label)
            assert np.allclose(gate_type.matrix, fsim(theta, phi))
            assert is_unitary(gate_type.matrix)

    def test_named_equivalences_from_table2(self):
        assert np.allclose(google_gate_type("S1").matrix, SYC)
        assert np.allclose(google_gate_type("S2").matrix, fsim(np.pi / 4, 0))
        assert is_locally_equivalent(google_gate_type("S2").matrix, SQRT_ISWAP)
        assert is_locally_equivalent(google_gate_type("S3").matrix, CZ)
        assert is_locally_equivalent(google_gate_type("S4").matrix, ISWAP)
        assert np.allclose(google_gate_type("SWAP").matrix, SWAP)

    def test_rigetti_types_use_xy_and_cz_parameterisation(self):
        assert rigetti_gate_type("S3").type_key == "cz"
        assert rigetti_gate_type("S4").type_key == "xy(3.141593)"
        for label, angle in S_TYPE_XY_ANGLES.items():
            rigetti = rigetti_gate_type(label)
            google = google_gate_type(label)
            assert is_locally_equivalent(rigetti.matrix, google.matrix)

    def test_unknown_label_rejected(self):
        with pytest.raises(ValueError):
            google_gate_type("S99")
        with pytest.raises(ValueError):
            rigetti_gate_type("S99")

    def test_all_types_catalogues(self):
        assert set(all_google_types()) == {"S1", "S2", "S3", "S4", "S5", "S6", "S7", "SWAP"}
        assert set(all_rigetti_types()) == {"S2", "S3", "S4", "S5", "S6", "SWAP"}


class TestInstructionSets:
    def test_google_set_memberships_match_table2(self):
        assert google_instruction_set("G1").labels() == ["S1", "S2"]
        assert google_instruction_set("G3").labels() == ["S1", "S2", "S3", "S4"]
        assert google_instruction_set("G7").labels() == [
            "S1", "S2", "S3", "S4", "S5", "S6", "S7", "SWAP",
        ]
        assert google_instruction_set("G7").has_native_swap()
        assert not google_instruction_set("G6").has_native_swap()

    def test_rigetti_set_memberships_match_table2(self):
        assert rigetti_instruction_set("R1").labels() == ["S3", "S4"]
        assert rigetti_instruction_set("R5").labels() == ["S2", "S3", "S4", "S5", "S6", "SWAP"]
        assert rigetti_instruction_set("R5").has_native_swap()

    def test_single_gate_sets(self):
        s1 = single_gate_set("S1")
        assert s1.num_gate_types == 1
        assert not s1.is_continuous

    def test_continuous_sets(self):
        assert full_xy_set().is_continuous
        assert full_xy_set().continuous_family == "xy"
        assert full_fsim_set().continuous_family == "fsim"
        assert full_fsim_set().num_gate_types == 0

    def test_unknown_set_names_rejected(self):
        with pytest.raises(ValueError):
            google_instruction_set("G9")
        with pytest.raises(ValueError):
            rigetti_instruction_set("R9")

    def test_instruction_set_validation(self):
        with pytest.raises(ValueError):
            InstructionSet(name="bad")
        with pytest.raises(ValueError):
            InstructionSet(name="bad", continuous_family="weird")

    def test_catalogue_sizes(self):
        assert len(google_catalogue()) == 7 + 7 + 1
        assert len(rigetti_catalogue()) == 5 + 5 + 1
        combined = table2_catalogue()
        assert "G7" in combined and "R5" in combined and "FullfSim" in combined and "FullXY" in combined

    def test_type_keys_are_unique_within_a_set(self):
        for instruction_set in google_catalogue().values():
            keys = instruction_set.type_keys()
            assert len(keys) == len(set(keys))
