"""Tests for the Kraus channels and the calibration-driven noise model."""

import numpy as np
import pytest

from repro.circuits.circuit import Operation
from repro.circuits.gate import fsim_gate, named_gate, rz_gate
from repro.simulators.noise import (
    KrausChannel,
    amplitude_damping_channel,
    average_channel_fidelity,
    bit_flip_channel,
    compose_channels,
    depolarizing_channel,
    depolarizing_probability_from_error_rate,
    expand_channel,
    phase_damping_channel,
    thermal_relaxation_channel,
)
from repro.simulators.noise_model import NoiseModel


class TestKrausChannels:
    def test_channel_requires_trace_preservation(self):
        with pytest.raises(ValueError):
            KrausChannel("bad", (np.array([[0.5, 0], [0, 0.5]]),))

    def test_channel_requires_operators(self):
        with pytest.raises(ValueError):
            KrausChannel("empty", ())

    @pytest.mark.parametrize("probability", [0.0, 0.01, 0.3, 1.0])
    @pytest.mark.parametrize("num_qubits", [1, 2])
    def test_depolarizing_is_trace_preserving(self, probability, num_qubits):
        channel = depolarizing_channel(probability, num_qubits)
        dim = 2**num_qubits
        total = sum(op.conj().T @ op for op in channel.operators)
        assert np.allclose(total, np.eye(dim))
        assert channel.num_qubits == num_qubits

    def test_depolarizing_probability_conversion(self):
        # 1% average error on a 2-qubit gate -> p = 4/3 %.
        assert depolarizing_probability_from_error_rate(0.01, 2) == pytest.approx(0.01 * 4 / 3)
        assert depolarizing_probability_from_error_rate(0.01, 1) == pytest.approx(0.02)
        with pytest.raises(ValueError):
            depolarizing_probability_from_error_rate(-0.1, 1)

    def test_depolarizing_average_fidelity_matches_error_rate(self):
        for error_rate in (0.001, 0.01, 0.05):
            probability = depolarizing_probability_from_error_rate(error_rate, 2)
            channel = depolarizing_channel(probability, 2)
            assert average_channel_fidelity(channel) == pytest.approx(1 - error_rate, abs=1e-9)

    def test_depolarizing_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            depolarizing_channel(1.5, 1)

    def test_amplitude_damping_decays_excited_state(self):
        channel = amplitude_damping_channel(0.3)
        rho_excited = np.array([[0, 0], [0, 1]], dtype=complex)
        decayed = sum(k @ rho_excited @ k.conj().T for k in channel.operators)
        assert decayed[0, 0] == pytest.approx(0.3)
        assert decayed[1, 1] == pytest.approx(0.7)

    def test_phase_damping_kills_coherence(self):
        channel = phase_damping_channel(1.0)
        plus = 0.5 * np.ones((2, 2), dtype=complex)
        dephased = sum(k @ plus @ k.conj().T for k in channel.operators)
        assert dephased[0, 1] == pytest.approx(0.0)
        assert dephased[0, 0] == pytest.approx(0.5)

    def test_bit_flip_channel(self):
        channel = bit_flip_channel(0.25)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        flipped = sum(k @ rho @ k.conj().T for k in channel.operators)
        assert flipped[1, 1] == pytest.approx(0.25)

    def test_thermal_relaxation_zero_duration_is_identity(self):
        channel = thermal_relaxation_channel(0.0, 10_000, 10_000)
        assert channel.is_identity()

    def test_thermal_relaxation_long_duration_decays(self):
        channel = thermal_relaxation_channel(1e9, 10_000, 10_000)
        rho_excited = np.array([[0, 0], [0, 1]], dtype=complex)
        decayed = sum(k @ rho_excited @ k.conj().T for k in channel.operators)
        assert decayed[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_thermal_relaxation_validates_input(self):
        with pytest.raises(ValueError):
            thermal_relaxation_channel(-1.0, 100, 100)
        with pytest.raises(ValueError):
            thermal_relaxation_channel(1.0, 0, 100)

    def test_compose_and_expand_channels(self):
        composed = compose_channels("combo", bit_flip_channel(0.1), phase_damping_channel(0.2))
        total = sum(op.conj().T @ op for op in composed.operators)
        assert np.allclose(total, np.eye(2))
        expanded = expand_channel(bit_flip_channel(0.1), 2)
        assert expanded.num_qubits == 2
        with pytest.raises(ValueError):
            expand_channel(depolarizing_channel(0.1, 2), 2)


class TestNoiseModel:
    def build_model(self) -> NoiseModel:
        model = NoiseModel.uniform(4, two_qubit_error=0.01, single_qubit_error=0.001)
        model.set_two_qubit_error_rate("cz", (0, 1), 0.05)
        model.set_two_qubit_error_rate("xy(3.141593)", (0, 1), 0.02)
        return model

    def test_error_rate_lookup_and_default(self):
        model = self.build_model()
        assert model.two_qubit_error_rate("cz", (0, 1)) == pytest.approx(0.05)
        assert model.two_qubit_error_rate("cz", (1, 0)) == pytest.approx(0.05)
        assert model.two_qubit_error_rate("cz", (2, 3)) == pytest.approx(0.01)
        assert model.single_qubit_error_rate(2) == pytest.approx(0.001)

    def test_wildcard_gate_type(self):
        model = NoiseModel()
        model.two_qubit_error[(0, 1)] = {"*": 0.03}
        assert model.two_qubit_error_rate("anything", (0, 1)) == pytest.approx(0.03)

    def test_operation_fidelity_uses_physical_mapping(self):
        model = self.build_model()
        operation = Operation(named_gate("cz"), (0, 1))
        # Circuit qubits (0, 1) hosted on physical (0, 1) -> measured 5% error.
        assert model.operation_fidelity(operation, [0, 1]) == pytest.approx(0.95)
        # Hosted elsewhere -> default 1% error.
        assert model.operation_fidelity(operation, [2, 3]) == pytest.approx(0.99)

    def test_gate_duration_lookup(self):
        model = self.build_model()
        model.gate_durations["cz"] = 200.0
        assert model.operation_duration(Operation(named_gate("cz"), (0, 1))) == 200.0
        assert model.operation_duration(Operation(rz_gate(0.1), (0,))) == model.single_qubit_duration
        assert (
            model.operation_duration(Operation(fsim_gate(0.1, 0.2), (0, 1)))
            == model.two_qubit_duration
        )

    def test_error_channels_for_operation(self):
        model = self.build_model()
        operation = Operation(named_gate("cz"), (0, 1))
        channels = model.error_channels_for_operation(operation, [0, 1])
        assert len(channels) >= 1
        depolarizing, qubits = channels[0]
        assert qubits == (0, 1)
        assert depolarizing.num_qubits == 2

    def test_idle_channel_disabled_flags(self):
        model = self.build_model()
        model.include_idle_noise = False
        assert model.idle_channel(0, 0, 100.0) is None
        model.include_idle_noise = True
        model.include_thermal_relaxation = False
        assert model.idle_channel(0, 0, 100.0) is None

    def test_idle_channel_zero_duration(self):
        model = self.build_model()
        assert model.idle_channel(0, 0, 0.0) is None

    def test_uniform_constructor_populates_every_qubit(self):
        model = NoiseModel.uniform(3, 0.02, readout_error=0.05)
        assert model.qubit_readout_error(2) == pytest.approx(0.05)
        assert model.qubit_t1(1) > 0
