"""Tests for the analytic KAK/identity baseline ("Cirq-like")."""

import numpy as np
import pytest

from repro.core.baseline import (
    UnsupportedDecompositionError,
    baseline_counts_for_targets,
    baseline_gate_count,
    is_swap_like,
)
from repro.gates.parametric import fsim, rzz
from repro.gates.standard import CZ, SWAP
from repro.gates.unitary import random_su4


class TestBaselineCounts:
    def test_cz_counts(self, session_rng):
        assert baseline_gate_count(np.eye(4), "cz").num_two_qubit_gates == 0
        assert baseline_gate_count(CZ, "cz").num_two_qubit_gates == 1
        assert baseline_gate_count(rzz(0.3), "cz").num_two_qubit_gates == 2
        assert baseline_gate_count(random_su4(session_rng), "cz").num_two_qubit_gates == 3

    def test_syc_counts_are_twice_cz(self, session_rng):
        unitary = random_su4(session_rng)
        cz = baseline_gate_count(unitary, "cz").num_two_qubit_gates
        syc = baseline_gate_count(unitary, "syc").num_two_qubit_gates
        assert syc == 2 * cz

    def test_iswap_generic_count_matches_paper(self, session_rng):
        # Paper: Cirq needs ~4 iSWAPs for a QV unitary, NuOp needs 3.
        assert baseline_gate_count(random_su4(session_rng), "iswap").num_two_qubit_gates == 4

    def test_iswap_simple_classes(self):
        assert baseline_gate_count(CZ, "iswap").num_two_qubit_gates == 2
        assert baseline_gate_count(SWAP, "iswap").num_two_qubit_gates == 4

    def test_sqrt_iswap_unsupported_for_generic_unitaries(self, session_rng):
        with pytest.raises(UnsupportedDecompositionError):
            baseline_gate_count(random_su4(session_rng), "sqrt_iswap")
        estimate = baseline_gate_count(
            random_su4(session_rng), "sqrt_iswap", allow_unsupported=True
        )
        assert estimate.num_two_qubit_gates == 6

    def test_sqrt_iswap_simple_classes_supported(self):
        assert baseline_gate_count(rzz(0.3), "sqrt_iswap").num_two_qubit_gates >= 2

    def test_unknown_basis_rejected(self):
        with pytest.raises(UnsupportedDecompositionError):
            baseline_gate_count(CZ, "xx_plus_yy")

    def test_nuop_never_worse_than_baseline(self, shared_decomposer, session_rng):
        """The paper's central Figure 6 claim, spot-checked."""
        from repro.core.gate_types import google_gate_type

        unitaries = [random_su4(session_rng), rzz(0.7), fsim(0.3, 0.8)]
        for basis, label in (("cz", "S3"), ("syc", "S1"), ("iswap", "S4")):
            gate = google_gate_type(label).gate
            for unitary in unitaries:
                baseline = baseline_gate_count(unitary, basis).num_two_qubit_gates
                nuop = shared_decomposer.decompose_exact(unitary, gate=gate).num_layers
                assert nuop <= baseline


class TestHelpers:
    def test_baseline_counts_for_targets(self, session_rng):
        unitaries = [random_su4(session_rng) for _ in range(3)]
        summary = baseline_counts_for_targets(unitaries, "cz")
        assert summary["mean_gate_count"] == pytest.approx(3.0)
        assert summary["max_gate_count"] == 3

    def test_is_swap_like(self):
        assert is_swap_like(SWAP)
        assert is_swap_like(fsim(np.pi / 2, np.pi))
        assert not is_swap_like(CZ)
