"""Tests for the Weyl-chamber decomposition tabulation.

The heavyweight fixture (a resolution-3 CZ table at ``max_layers=3``)
is built once per module and re-inserted into the in-process table
cache before each test, so the suite exercises the real lookup path
without rebuilding the table dozens of times.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.compiler.tabulation as tabulation_module
import repro.core.decomposer as decomposer_module
from repro.caching.disk import (
    configure_disk_cache,
    get_global_disk_cache,
    reset_disk_cache_configuration,
)
from repro.circuits.gate import named_gate
from repro.compiler.autotune import CandidateScore, TunerVerdict
from repro.compiler.tabulation import (
    GRID_RESOLUTION_ENV_VAR,
    TABULATION_ENV_VAR,
    DecompositionTable,
    TabulationConfig,
    _batched_u3,
    _batched_u3_derivatives,
    build_table,
    chamber_grid,
    clear_table_cache,
    default_grid_resolution,
    resolve_tabulation,
    table_cache_stats,
    table_for,
    table_spec,
)
from repro.core.decomposer import (
    NuOpDecomposer,
    clear_profile_cache,
    profile_cache_stats,
)
from repro.gates.parametric import canonical_gate, u3
from repro.gates.unitary import random_su4

QUARTER = np.pi / 4


@pytest.fixture(autouse=True)
def _clean_state(monkeypatch):
    """Isolate every test from ambient tabulation/caching state."""
    monkeypatch.delenv(TABULATION_ENV_VAR, raising=False)
    monkeypatch.delenv(GRID_RESOLUTION_ENV_VAR, raising=False)
    clear_profile_cache()
    yield
    clear_profile_cache()


@pytest.fixture(scope="module")
def cz_gate():
    return named_gate("cz")


@pytest.fixture(scope="module")
def cz_table_setup(cz_gate):
    """A shared (decomposer, config, table) triple, built once."""
    config = TabulationConfig(resolution=3)
    decomposer = NuOpDecomposer(seed=7, max_layers=3, tabulation=config)
    table = build_table(decomposer, cz_gate, None, config)
    return decomposer, config, table


@pytest.fixture()
def cz_table(cz_table_setup):
    """The shared table, guaranteed present in the in-process cache."""
    decomposer, config, table = cz_table_setup
    digest = table.spec.digest()
    tabulation_module._table_cache_insert(digest, table, "hits")
    return decomposer, config, table


class TestChamberGrid:
    def test_point_counts(self):
        assert len(chamber_grid(3)) == 11
        assert len(chamber_grid(5)) == 45

    def test_points_lie_in_chamber(self):
        for x, y, z in chamber_grid(4):
            assert QUARTER + 1e-12 >= x >= y >= abs(z)
            if abs(x - QUARTER) < 1e-12:
                assert z >= 0.0  # (x, y, -z) is equivalent on this face

    def test_grid_includes_corners(self):
        points = chamber_grid(3)
        for corner in [
            (0.0, 0.0, 0.0),
            (QUARTER, 0.0, 0.0),
            (QUARTER, QUARTER, 0.0),
            (QUARTER, QUARTER, QUARTER),
        ]:
            assert any(np.allclose(p, corner) for p in points)

    def test_no_duplicate_points(self):
        points = chamber_grid(5)
        rounded = {tuple(np.round(p, 12)) for p in points}
        assert len(rounded) == len(points)


class TestConfigResolution:
    def test_resolution_floor(self):
        with pytest.raises(ValueError):
            TabulationConfig(resolution=1)

    def test_fingerprint_excludes_build_on_miss(self):
        eager = TabulationConfig(resolution=3, build_on_miss=True)
        lazy = TabulationConfig(resolution=3, build_on_miss=False)
        assert eager.fingerprint() == lazy.fingerprint()
        assert eager.fingerprint() != TabulationConfig(resolution=4).fingerprint()

    def test_resolve_knob_semantics(self, monkeypatch):
        assert resolve_tabulation(None) is None
        assert resolve_tabulation(False) is None
        config = resolve_tabulation(True)
        assert config == TabulationConfig(resolution=default_grid_resolution())
        explicit = TabulationConfig(resolution=4)
        assert resolve_tabulation(explicit) is explicit

        monkeypatch.setenv(TABULATION_ENV_VAR, "1")
        assert resolve_tabulation(None) is not None
        assert resolve_tabulation(False) is None  # explicit knob wins

    def test_grid_resolution_env(self, monkeypatch):
        monkeypatch.setenv(GRID_RESOLUTION_ENV_VAR, "7")
        assert default_grid_resolution() == 7
        monkeypatch.setenv(TABULATION_ENV_VAR, "1")
        assert resolve_tabulation(None).resolution == 7

    def test_decomposer_env_gate(self, monkeypatch):
        decomposer = NuOpDecomposer()
        assert decomposer.resolved_tabulation() is None
        monkeypatch.setenv(TABULATION_ENV_VAR, "1")
        assert decomposer.resolved_tabulation() is not None

    def test_table_spec_requires_one_target(self, cz_gate):
        decomposer = NuOpDecomposer()
        config = TabulationConfig(resolution=3)
        with pytest.raises(ValueError):
            table_spec(decomposer, None, None, config)
        with pytest.raises(ValueError):
            table_spec(decomposer, cz_gate, "fsim", config)

    def test_spec_digest_separates_targets(self, cz_gate):
        decomposer = NuOpDecomposer()
        config = TabulationConfig(resolution=3)
        gate_spec = table_spec(decomposer, cz_gate, None, config)
        family_spec = table_spec(decomposer, None, "fsim", config)
        assert gate_spec.digest() != family_spec.digest()


class TestTableStructure:
    def test_entries_cover_grid_without_early_stop(self, cz_table):
        decomposer, config, table = cz_table
        assert len(table.entries) == len(chamber_grid(config.resolution))
        for entry in table.entries:
            # No early stop: every layer count 0..max_layers is present,
            # even for grid points exact at fewer layers.
            assert [s.num_layers for s in entry.solutions] == list(
                range(decomposer.max_layers + 1)
            )

    def test_nearest_recovers_grid_points(self, cz_table):
        _, _, table = cz_table
        for entry in table.entries[:: max(1, len(table.entries) // 5)]:
            found = table.nearest(canonical_gate(*entry.coords))
            assert np.allclose(found.coords, entry.coords)

    def test_invariants_rebuilt_after_pickle(self, cz_table):
        import pickle

        _, _, table = cz_table
        table._entry_invariants()
        clone = pickle.loads(pickle.dumps(table))
        assert clone._invariants is None  # derived data is not persisted
        found = clone.nearest(canonical_gate(*table.entries[-1].coords))
        assert np.allclose(found.coords, table.entries[-1].coords)


class TestBatchedU3:
    def test_matches_scalar_u3(self, rng):
        angles = rng.uniform(-np.pi, np.pi, size=(6, 3))
        batched = _batched_u3(angles)
        for k in range(angles.shape[0]):
            assert np.allclose(batched[k], u3(*angles[k]), atol=1e-12)

    def test_derivatives_match_finite_differences(self, rng):
        angles = rng.uniform(-np.pi, np.pi, size=(2, 3))
        derivatives = _batched_u3_derivatives(angles)
        eps = 1e-7
        for k in range(2):
            for axis in range(3):
                bumped = angles.copy()
                bumped[k, axis] += eps
                numeric = (_batched_u3(bumped)[k] - _batched_u3(angles)[k]) / eps
                assert np.allclose(derivatives[k, axis], numeric, atol=1e-6)


class TestTabulatedQueries:
    def test_threshold_matches_classic(self, cz_table, cz_gate, rng):
        tab_decomposer, _, _ = cz_table
        classic = NuOpDecomposer(seed=7, max_layers=3)
        for _ in range(3):
            target = random_su4(rng)
            tabulated = tab_decomposer.decompose_for_threshold(
                target, gate=cz_gate
            )
            reference = classic.decompose_for_threshold(target, gate=cz_gate)
            assert tabulated.num_layers == reference.num_layers
            assert tabulated.decomposition_fidelity == pytest.approx(
                reference.decomposition_fidelity, abs=1e-3
            )
            assert tabulated.verify() == pytest.approx(
                tabulated.decomposition_fidelity, abs=1e-9
            )

    def test_exact_matches_classic(self, cz_table, cz_gate, rng):
        tab_decomposer, _, _ = cz_table
        classic = NuOpDecomposer(seed=7, max_layers=3)
        target = random_su4(rng)
        tabulated = tab_decomposer.decompose_exact(target, gate=cz_gate)
        reference = classic.decompose_exact(target, gate=cz_gate)
        assert tabulated.num_layers == reference.num_layers
        assert tabulated.verify() == pytest.approx(1.0, abs=1e-6)

    def test_profile_shape_matches_classic(self, cz_table, cz_gate, rng):
        tab_decomposer, _, _ = cz_table
        target = random_su4(rng)
        profile = tab_decomposer.fidelity_profile(target, gate=cz_gate)
        assert [s.num_layers for s in profile] == list(range(len(profile)))
        assert profile[-1].fidelity >= 1.0 - 1e-6
        fidelities = [s.fidelity for s in profile]
        assert fidelities == sorted(fidelities)

    def test_untabulated_decomposer_is_unaffected(self, cz_gate, rng):
        """With the knob off, queries never consult the table machinery."""
        before = table_cache_stats()
        classic = NuOpDecomposer(seed=7, max_layers=2)
        classic.decompose_for_threshold(random_su4(rng), gate=cz_gate)
        after = table_cache_stats()
        assert after["hits"] == before["hits"]
        assert after["builds"] == before["builds"]


class TestTableStore:
    def _tiny_decomposer(self, seed: int) -> NuOpDecomposer:
        config = TabulationConfig(resolution=2)
        return NuOpDecomposer(seed=seed, max_layers=1, tabulation=config)

    def test_build_disabled_returns_none(self, cz_gate):
        config = TabulationConfig(resolution=2, build_on_miss=False)
        decomposer = NuOpDecomposer(seed=101, max_layers=1, tabulation=config)
        assert table_for(decomposer, cz_gate, None, config) is None
        table = table_for(decomposer, cz_gate, None, config, build=True)
        assert isinstance(table, DecompositionTable)

    def test_memory_tier_hit(self, cz_gate):
        decomposer = self._tiny_decomposer(seed=102)
        config = decomposer.tabulation
        before = table_cache_stats()
        first = table_for(decomposer, cz_gate, None, config)
        second = table_for(decomposer, cz_gate, None, config)
        after = table_cache_stats()
        assert first is second
        assert after["builds"] == before["builds"] + 1
        assert after["hits"] == before["hits"] + 1

    def test_disk_round_trip_and_counters(self, cz_gate, tmp_path):
        decomposer = self._tiny_decomposer(seed=103)
        config = decomposer.tabulation
        configure_disk_cache(str(tmp_path))
        try:
            disk = get_global_disk_cache()
            built = table_for(decomposer, cz_gate, None, config)
            assert disk.stats()["decomp_writes"] == 1

            clear_table_cache()
            before = table_cache_stats()
            loaded = table_for(decomposer, cz_gate, None, config)
            after = table_cache_stats()
            assert after["disk_loads"] == before["disk_loads"] + 1
            assert after["builds"] == before["builds"]
            assert disk.stats()["decomp_hits"] >= 1
            assert loaded.spec == built.spec
            for rebuilt, original in zip(loaded.entries, built.entries):
                assert rebuilt.coords == original.coords
                for a, b in zip(rebuilt.solutions, original.solutions):
                    assert a.fidelity == pytest.approx(b.fidelity, abs=1e-12)
        finally:
            reset_disk_cache_configuration()

    def test_lru_eviction(self, cz_gate, monkeypatch):
        monkeypatch.setattr(tabulation_module, "_TABLE_CACHE_MAX_ENTRIES", 2)
        clear_table_cache()
        for seed in (104, 105, 106):
            decomposer = self._tiny_decomposer(seed=seed)
            table_for(decomposer, cz_gate, None, decomposer.tabulation)
        assert table_cache_stats()["entries"] == 2


class TestProfileCacheSatellites:
    def test_target_key_canonicalises_sign_flip(self, rng):
        """A global sign (the most common KAK reconstruction ambiguity)
        maps to the same key: IEEE negation is exact, so the pivot
        rotation cancels it bit for bit.  Other phases canonicalise only
        approximately -- a miss there costs a recompute, never
        correctness."""
        decomposer = NuOpDecomposer()
        target = random_su4(rng)
        key = decomposer._target_cache_key(target)
        assert decomposer._target_cache_key(-target) == key

    def test_target_key_has_no_rounding_aliasing(self, rng):
        """Sub-1e-10 perturbations used to collide under decimal rounding."""
        decomposer = NuOpDecomposer()
        target = random_su4(rng)
        perturbed = target.copy()
        perturbed[1, 2] += 1e-11
        assert decomposer._target_cache_key(target) != decomposer._target_cache_key(
            perturbed
        )

    def test_profile_lru_bound(self, cz_gate, rng, monkeypatch):
        monkeypatch.setattr(decomposer_module, "_PROFILE_CACHE_MAX_ENTRIES", 4)
        decomposer = NuOpDecomposer(seed=7, max_layers=0)
        for _ in range(6):
            decomposer.fidelity_profile(random_su4(rng), gate=cz_gate)
        stats = profile_cache_stats()
        assert stats["entries"] <= 4

    def test_tabulation_state_splits_profile_keys(self, cz_gate, rng):
        """Tabulated and classic profiles must never alias in the LRU."""
        target = random_su4(rng)
        classic = NuOpDecomposer(seed=7, max_layers=3)
        tabulated = NuOpDecomposer(
            seed=7, max_layers=3, tabulation=TabulationConfig(resolution=3)
        )
        classic_key = classic._profile_cache_key(target, cz_gate.type_key, 3)
        tabulated_key = tabulated._profile_cache_key(target, cz_gate.type_key, 3)
        assert classic_key != tabulated_key


class TestVerdictOverrides:
    def _score(self, **overrides) -> CandidateScore:
        return CandidateScore(
            pipeline="nuop",
            predicted_fidelity=0.9,
            two_qubit_count=3,
            single_qubit_count=8,
            duration_ns=100.0,
            **overrides,
        )

    def test_winner_overrides_apply(self):
        winner = self._score(max_layers_override=2, approximate_override=False)
        verdict = TunerVerdict(pipeline="nuop", scores=(winner,), winner=winner)
        assert verdict.compile_options(True, None) == (False, 2)

    def test_no_overrides_pass_through(self):
        winner = self._score()
        verdict = TunerVerdict(pipeline="nuop", scores=(winner,), winner=winner)
        assert verdict.compile_options(True, 4) == (True, 4)

    def test_pre_sweep_blob_compat(self):
        """Verdicts unpickled from old disk blobs lack ``winner``."""
        score = self._score()
        verdict = TunerVerdict(pipeline="nuop", scores=(score,))
        object.__delattr__(verdict, "winner")
        assert verdict.winning_score() is score
        assert verdict.compile_options(True, None) == (True, None)
        assert verdict.winning_fidelity() == pytest.approx(0.9)

    def test_override_rows_are_reported(self):
        row = self._score(max_layers_override=3, approximate_override=True).as_row()
        assert row["max_layers"] == 3
        assert row["approximate"] is True
        assert "max_layers" not in self._score().as_row()
