"""Tests for readout-error mitigation and the synthetic device factories."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.ghz import ghz_circuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import single_gate_set
from repro.core.pipeline import compile_circuit
from repro.devices.synthetic import device_family, synthetic_device
from repro.simulators.readout_mitigation import (
    ReadoutMitigator,
    apply_confusion,
    confusion_matrix,
    mitigate_probabilities,
    single_qubit_confusion,
)
from repro.simulators.statevector import ideal_probabilities


class TestConfusionMatrix:
    def test_single_qubit_columns_are_distributions(self):
        matrix = single_qubit_confusion(0.05, asymmetry=0.4)
        np.testing.assert_allclose(matrix.sum(axis=0), [1.0, 1.0])
        assert matrix[1, 0] == pytest.approx(0.05 * 0.6)
        assert matrix[0, 1] == pytest.approx(0.05 * 1.4)

    def test_rejects_bad_error_rate(self):
        with pytest.raises(ValueError):
            single_qubit_confusion(0.6)
        with pytest.raises(ValueError):
            single_qubit_confusion(0.4, asymmetry=2.0)

    def test_multi_qubit_shape_and_columns(self):
        matrix = confusion_matrix([0.02, 0.05, 0.01])
        assert matrix.shape == (8, 8)
        np.testing.assert_allclose(matrix.sum(axis=0), np.ones(8), atol=1e-12)

    def test_zero_error_is_identity(self):
        np.testing.assert_allclose(confusion_matrix([0.0, 0.0]), np.eye(4))

    def test_empty_register_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix([])


class TestMitigation:
    def test_forward_then_mitigate_recovers_distribution(self):
        true = np.array([0.5, 0.0, 0.0, 0.5])
        errors = [0.03, 0.06]
        measured = apply_confusion(true, errors)
        assert measured[1] > 0.0  # readout error leaks probability
        for method in ("inverse", "least_squares"):
            recovered = mitigate_probabilities(measured, errors, method=method)
            np.testing.assert_allclose(recovered, true, atol=1e-9)

    def test_mitigated_output_is_a_distribution(self):
        rng = np.random.default_rng(4)
        raw = rng.random(8)
        raw /= raw.sum()
        noisy = apply_confusion(raw, [0.05, 0.02, 0.08])
        # Add shot noise so inversion would go slightly negative.
        noisy = noisy + rng.normal(0.0, 0.01, size=8)
        noisy = np.clip(noisy, 0, None)
        noisy /= noisy.sum()
        recovered = mitigate_probabilities(noisy, [0.05, 0.02, 0.08])
        assert np.all(recovered >= 0.0)
        assert recovered.sum() == pytest.approx(1.0)

    def test_unknown_method_and_bad_size(self):
        with pytest.raises(ValueError):
            mitigate_probabilities(np.ones(4) / 4, [0.01, 0.01], method="bayes")
        with pytest.raises(ValueError):
            mitigate_probabilities(np.ones(4) / 4, [0.01])

    @given(error=st.floats(min_value=0.0, max_value=0.2))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_property(self, error):
        true = np.array([0.25, 0.25, 0.25, 0.25])
        measured = apply_confusion(true, [error, error])
        recovered = mitigate_probabilities(measured, [error, error], method="inverse")
        np.testing.assert_allclose(recovered, true, atol=1e-8)

    def test_mitigator_for_device(self):
        device = synthetic_device(4, readout_error=0.03, seed=1)
        mitigator = ReadoutMitigator.for_device(device, [0, 1, 2])
        assert len(mitigator.readout_errors) == 3
        assert 0.9 < mitigator.expected_assignment_fidelity() < 1.0
        ideal = ideal_probabilities(ghz_circuit(3))
        measured = apply_confusion(ideal, mitigator.readout_errors)
        recovered = mitigator.mitigate(measured)
        np.testing.assert_allclose(recovered, ideal, atol=1e-7)


class TestSyntheticDevices:
    def test_line_ring_grid_edge_counts(self):
        assert synthetic_device(6, "line").topology.graph.number_of_edges() == 5
        assert synthetic_device(6, "ring").topology.graph.number_of_edges() == 6
        grid = synthetic_device(6, "grid")
        assert grid.topology.graph.number_of_edges() == 7  # 2x3 grid

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            synthetic_device(1)
        with pytest.raises(ValueError):
            synthetic_device(4, topology_kind="star")

    def test_noise_statistics_applied(self):
        device = synthetic_device(5, mean_two_qubit_error=0.01, readout_error=0.02, seed=3)
        device.register_gate_type("cz")
        rates = [1.0 - f for f in device.edge_fidelities("cz").values()]
        assert all(0.0 < rate < 0.2 for rate in rates)
        assert device.noise_model.readout_error[0] == pytest.approx(0.02)

    def test_noise_variation_flag(self):
        uniform = synthetic_device(5, noise_variation=False, seed=2)
        uniform.register_gate_type("cz")
        rates = set(round(1.0 - f, 9) for f in uniform.edge_fidelities("cz").values())
        assert len(rates) == 1

    def test_device_family_sizes(self):
        family = device_family([4, 9], topology_kind="grid")
        assert set(family) == {4, 9}
        assert family[9].topology.graph.number_of_nodes() == 9

    def test_compile_on_synthetic_device(self, shared_decomposer):
        device = synthetic_device(5, "line", seed=5)
        circuit = ghz_circuit(4)
        compiled = compile_circuit(
            circuit, device, single_gate_set("S3"), decomposer=shared_decomposer
        )
        assert compiled.two_qubit_gate_count >= 3
        assert set(compiled.physical_qubits) <= set(device.topology.graph.nodes)
