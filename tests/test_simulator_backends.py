"""The simulator-backend registry, noise programs and legacy pinning.

Contracts under test:

* under ``REPRO_SIM_KERNEL=reference`` the ``auto`` backend (and
  therefore the ``simulate_compiled`` path) is bit-identical to the
  frozen pre-registry dispatch (``simulate_compiled_reference``) on
  **both** sides of the density-matrix / trajectory threshold;
* the default fused kernel stays within ``1e-10`` of that reference and
  carries a distinct backend ``version`` so the two kernels never share
  simulation-cache entries;
* the registry resolves names, rejects unknown names with the list of
  known ones, and every backend consumes the same shared noise program;
* trajectory and density-matrix backends converge on each other for
  small circuits at high trajectory counts (tolerance-based);
* ``SimulationOptions`` validates its fields with clear errors;
* noise-program lowering is deterministic, content-fingerprinted and
  cached.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.core.pipeline import compile_circuit
from repro.devices.synthetic import synthetic_device
from repro.experiments.runner import (
    SimulationOptions,
    simulate_compiled,
    simulate_compiled_reference,
)
from repro.simulators.backend import (
    SIM_KERNEL_ENV_VAR,
    active_simulation_kernel,
    available_backends,
    backend_invocation_counts,
    reset_backend_invocation_counts,
    resolve_backend,
)
from repro.simulators.estimator import program_fidelity_estimate
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import (
    build_noise_program,
    clear_noise_program_cache,
    noise_program_cache_stats,
    noise_program_for,
)
from repro.simulators.statevector import ideal_probabilities


@pytest.fixture(scope="module")
def compiled_job(shared_decomposer):
    """One compiled 3-qubit QV circuit plus the device it compiled on."""
    device = synthetic_device(5, "line", seed=13)
    circuit = qv_circuit(3, rng=np.random.default_rng(3))
    compiled = compile_circuit(
        circuit, device, google_instruction_set("G3"), decomposer=shared_decomposer
    )
    return compiled, device


class TestRegistry:
    def test_expected_backends_are_registered(self):
        names = set(available_backends())
        assert {"density-matrix", "trajectory", "estimator", "auto"} <= names

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("no-such-backend")
        message = str(excinfo.value)
        assert "no-such-backend" in message
        for name in ("density-matrix", "trajectory", "estimator", "auto"):
            assert name in message

    def test_instances_pass_through(self):
        backend = resolve_backend("trajectory")
        assert resolve_backend(backend) is backend

    def test_backends_carry_identity(self):
        for name, backend in available_backends().items():
            assert backend.name == name
            assert isinstance(backend.version, int)
            assert backend.description

    def test_effective_backend_resolves_auto_dispatch(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        program = build_noise_program(circuit, None)
        auto = resolve_backend("auto")
        below = SimulationOptions(shots=100, seed=1, max_density_matrix_qubits=8)
        above = SimulationOptions(shots=100, seed=1, max_density_matrix_qubits=2)
        assert auto.effective_backend(program, below) is resolve_backend("density-matrix")
        assert auto.effective_backend(program, above) is resolve_backend("trajectory")
        # Concrete backends are their own effective backend.
        for name in ("density-matrix", "trajectory", "estimator"):
            backend = resolve_backend(name)
            assert backend.effective_backend(program, below) is backend


class TestAutoMatchesLegacyDispatch:
    """Bit-identity of the backend dispatch, pinned on the reference kernel.

    The fused kernel (the default) is numerically equal but not
    bit-identical (float reassociation); its ``<= 1e-10`` contract is
    covered by :class:`TestFusedKernel` and ``tests/test_superop.py``.
    """

    def test_density_matrix_side_of_threshold(self, compiled_job, monkeypatch):
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        compiled, device = compiled_job
        options = SimulationOptions(shots=1500, seed=5)
        reference = simulate_compiled_reference(compiled, device, options)
        assert np.array_equal(simulate_compiled(compiled, device, options), reference)
        assert np.array_equal(
            simulate_compiled(compiled, device, options, backend="auto"), reference
        )
        # auto delegated to the exact backend below the threshold.
        assert np.array_equal(
            simulate_compiled(compiled, device, options, backend="density-matrix"),
            reference,
        )

    def test_trajectory_side_of_threshold(self, compiled_job, monkeypatch):
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        compiled, device = compiled_job
        # Force the trajectory path by lowering the threshold below the
        # circuit width, exactly how the legacy dispatch would switch.
        options = SimulationOptions(
            shots=1500, seed=5, max_density_matrix_qubits=1, trajectories=7
        )
        reference = simulate_compiled_reference(compiled, device, options)
        assert np.array_equal(simulate_compiled(compiled, device, options), reference)
        assert np.array_equal(
            simulate_compiled(compiled, device, options, backend="trajectory"),
            reference,
        )

    def test_method_field_selects_backend(self, compiled_job):
        compiled, device = compiled_job
        via_method = simulate_compiled(
            compiled, device, SimulationOptions(shots=1000, seed=9, method="estimator")
        )
        via_argument = simulate_compiled(
            compiled, device, SimulationOptions(shots=1000, seed=9), backend="estimator"
        )
        assert np.array_equal(via_method, via_argument)


class TestFusedKernel:
    """The kernel knob and the fused kernel's tolerance/versioning contract."""

    def test_fused_is_the_default_kernel(self, monkeypatch):
        monkeypatch.delenv(SIM_KERNEL_ENV_VAR, raising=False)
        assert active_simulation_kernel() == "fused"
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        assert active_simulation_kernel() == "reference"

    def test_invalid_kernel_warns_once_per_distinct_value(self, monkeypatch):
        import warnings as warnings_module

        from repro.simulators.backend import reset_simulation_kernel_warnings

        reset_simulation_kernel_warnings()
        try:
            monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "turbo")
            with pytest.warns(RuntimeWarning, match="REPRO_SIM_KERNEL"):
                assert active_simulation_kernel() == "fused"
            # Re-read per call, but no re-warn: a long-lived daemon calls
            # this per simulate and must not flood its log.
            with warnings_module.catch_warnings():
                warnings_module.simplefilter("error")
                assert active_simulation_kernel() == "fused"
            # A different invalid value gets its own single warning.
            monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "warp")
            with pytest.warns(RuntimeWarning, match="warp"):
                assert active_simulation_kernel() == "fused"
        finally:
            reset_simulation_kernel_warnings()

    @pytest.mark.parametrize("backend_name", ["density-matrix", "trajectory"])
    def test_kernels_never_share_cache_versions(self, backend_name, monkeypatch):
        backend = resolve_backend(backend_name)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
        fused_version = backend.version
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        reference_version = backend.version
        assert fused_version != reference_version
        assert reference_version == 1  # pre-fused caches stay valid

    def test_fused_dispatch_matches_reference_within_tolerance(
        self, compiled_job, monkeypatch
    ):
        compiled, device = compiled_job
        for options in (
            SimulationOptions(shots=1500, seed=5),
            SimulationOptions(
                shots=1500, seed=5, max_density_matrix_qubits=1, trajectories=7
            ),
        ):
            monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
            reference = simulate_compiled(compiled, device, options)
            monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
            fused = simulate_compiled(compiled, device, options)
            assert np.abs(fused - reference).max() <= 1e-10


class TestConvergenceParity:
    @pytest.mark.parametrize("num_qubits", [2, 3, 4])
    def test_trajectory_converges_to_density_matrix(self, num_qubits):
        circuit = qv_circuit(num_qubits, rng=np.random.default_rng(num_qubits))
        model = NoiseModel.uniform(
            num_qubits, two_qubit_error=0.01, single_qubit_error=0.001
        )
        program = build_noise_program(circuit, model)
        options = SimulationOptions(shots=1000, seed=2, trajectories=800)
        exact = resolve_backend("density-matrix").run(program, options)
        sampled = resolve_backend("trajectory").run(program, options)
        assert exact.shape == sampled.shape == (2**num_qubits,)
        assert exact.sum() == pytest.approx(1.0)
        assert sampled.sum() == pytest.approx(1.0)
        # Total-variation distance shrinks as 1/sqrt(T); 800 trajectories
        # on these error rates lands well inside 0.05.
        assert 0.5 * np.abs(exact - sampled).sum() < 0.05


class TestEstimatorBackend:
    def test_estimate_is_depolarised_ideal(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        model = NoiseModel.uniform(2, two_qubit_error=0.02)
        program = build_noise_program(circuit, model)
        estimate = resolve_backend("estimator").run(
            program, SimulationOptions(shots=1000, seed=1)
        )
        ideal = ideal_probabilities(circuit)
        fidelity = program_fidelity_estimate(program)
        assert 0.0 < fidelity < 1.0
        assert estimate.sum() == pytest.approx(1.0)
        assert np.allclose(estimate, fidelity * ideal + (1 - fidelity) / 4)

    def test_noiseless_program_estimates_ideal(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        program = build_noise_program(circuit, None)
        assert program_fidelity_estimate(program) == pytest.approx(1.0)
        estimate = resolve_backend("estimator").run(
            program, SimulationOptions(shots=1000, seed=1)
        )
        assert np.allclose(estimate, ideal_probabilities(circuit))


class TestSimulationOptionsValidation:
    def test_non_positive_shots_rejected(self):
        with pytest.raises(ValueError, match="shots"):
            SimulationOptions(shots=0)

    def test_non_positive_trajectories_rejected(self):
        with pytest.raises(ValueError, match="trajectories"):
            SimulationOptions(trajectories=-3)

    def test_negative_density_matrix_threshold_rejected(self):
        with pytest.raises(ValueError, match="max_density_matrix_qubits"):
            SimulationOptions(max_density_matrix_qubits=-1)

    def test_fingerprint_tracks_semantic_fields_only(self):
        base = SimulationOptions(shots=100, seed=1)
        assert base.fingerprint() == SimulationOptions(shots=100, seed=1).fingerprint()
        assert base.fingerprint() != SimulationOptions(shots=200, seed=1).fingerprint()
        assert base.fingerprint() != SimulationOptions(shots=100, seed=2).fingerprint()
        # method is carried by the backend component of cache keys instead.
        assert (
            base.fingerprint()
            == SimulationOptions(shots=100, seed=1, method="trajectory").fingerprint()
        )


class TestNoiseProgram:
    def test_lowering_is_deterministic_and_fingerprinted(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).cx(1, 2)
        model = NoiseModel.uniform(3, two_qubit_error=0.01)
        first = build_noise_program(circuit, model)
        second = build_noise_program(circuit, model)
        assert first.fingerprint() == second.fingerprint()
        assert first.num_operations() == 3
        assert first.num_channel_applications() > 0

    def test_fingerprint_tracks_noise_content(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        weak = build_noise_program(circuit, NoiseModel.uniform(2, two_qubit_error=0.01))
        strong = build_noise_program(circuit, NoiseModel.uniform(2, two_qubit_error=0.05))
        assert weak.fingerprint() != strong.fingerprint()

    def test_program_cache_hits_on_repeat(self, compiled_job):
        compiled, device = compiled_job
        clear_noise_program_cache()
        first = noise_program_for(compiled, device)
        second = noise_program_for(compiled, device)
        assert second is first
        stats = noise_program_cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_program_cache_bound_is_configurable(self, compiled_job, monkeypatch):
        compiled, device = compiled_job
        monkeypatch.setenv("REPRO_PROGRAM_CACHE_SIZE", "3")
        clear_noise_program_cache()  # re-reads the environment variable
        noise_program_for(compiled, device)
        stats = noise_program_cache_stats()
        assert stats["max_entries"] == 3
        assert stats["entries"] == 1
        clear_noise_program_cache()

    def test_invalid_program_cache_bound_warns_and_defaults(
        self, compiled_job, monkeypatch
    ):
        compiled, device = compiled_job
        for invalid in ("0", "-5", "many"):
            monkeypatch.setenv("REPRO_PROGRAM_CACHE_SIZE", invalid)
            clear_noise_program_cache()
            with pytest.warns(RuntimeWarning, match="REPRO_PROGRAM_CACHE_SIZE"):
                noise_program_for(compiled, device)
            assert noise_program_cache_stats()["max_entries"] == 256
        clear_noise_program_cache()

    def test_default_bound_reported_in_stats(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROGRAM_CACHE_SIZE", raising=False)
        clear_noise_program_cache()
        assert noise_program_cache_stats()["max_entries"] == 256


class TestInvocationCounters:
    def test_counts_accumulate_and_reset(self, compiled_job):
        compiled, device = compiled_job
        reset_backend_invocation_counts()
        simulate_compiled(compiled, device, SimulationOptions(shots=500, seed=1))
        counts = backend_invocation_counts()
        assert counts.get("auto") == 1
        assert counts.get("density-matrix") == 1  # auto delegated below threshold
        reset_backend_invocation_counts()
        assert backend_invocation_counts() == {}
