"""The shared environment-variable parsing policy (`repro.config`).

One helper, four callers (compile-cache size, tuner-cache size, program-
cache size, disk-cache byte budget).  The policy under test: unset or
blank means the default, valid positive integers pass through, and
anything else -- non-numeric, zero, negative -- warns (naming the
variable) and falls back to the caller's documented default instead of
silently clamping or raising.
"""

from __future__ import annotations

import pytest

from repro.config import positive_int_env

VAR = "REPRO_TEST_POSITIVE_INT"


class TestPositiveIntEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert positive_int_env(VAR, 42) == 42

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert positive_int_env(VAR, 42) == 42

    def test_none_default_passes_through(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert positive_int_env(VAR, None) is None

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, " 17 ")
        assert positive_int_env(VAR, 42) == 17

    @pytest.mark.parametrize("raw", ["many", "0", "-3", "1.5"])
    def test_invalid_warns_and_defaults(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        with pytest.warns(RuntimeWarning, match=VAR):
            assert positive_int_env(VAR, 42) == 42

    def test_invalid_note_overrides_warning_tail(self, monkeypatch):
        monkeypatch.setenv(VAR, "nope")
        with pytest.warns(RuntimeWarning, match="stays unbounded"):
            assert positive_int_env(VAR, None, invalid_note="stays unbounded") is None


class TestCallerWiring:
    """Each consolidated caller still reads its documented variable/default."""

    def test_program_cache_bound(self, monkeypatch):
        from repro.simulators.noise_program import (
            PROGRAM_CACHE_SIZE_ENV_VAR,
            _program_cache_bound,
        )

        monkeypatch.setenv(PROGRAM_CACHE_SIZE_ENV_VAR, "7")
        assert _program_cache_bound() == 7
        # Every-call read policy: a later change takes effect immediately,
        # no module reload, no cache clear.
        monkeypatch.setenv(PROGRAM_CACHE_SIZE_ENV_VAR, "9")
        assert _program_cache_bound() == 9
        monkeypatch.delenv(PROGRAM_CACHE_SIZE_ENV_VAR)
        assert _program_cache_bound() == 256

    def test_compile_cache_default(self, monkeypatch):
        from repro.core.pipeline import COMPILE_CACHE_SIZE_ENV_VAR, _default_cache_size

        monkeypatch.delenv(COMPILE_CACHE_SIZE_ENV_VAR, raising=False)
        assert _default_cache_size() == 4096
        monkeypatch.setenv(COMPILE_CACHE_SIZE_ENV_VAR, "11")
        assert _default_cache_size() == 11

    def test_tuner_cache_default(self, monkeypatch):
        from repro.compiler.autotune import (
            TUNER_CACHE_SIZE_ENV_VAR,
            _default_tuner_cache_size,
        )

        monkeypatch.delenv(TUNER_CACHE_SIZE_ENV_VAR, raising=False)
        assert _default_tuner_cache_size() == 8192
        monkeypatch.setenv(TUNER_CACHE_SIZE_ENV_VAR, "13")
        assert _default_tuner_cache_size() == 13

    def test_disk_cache_max_bytes_unbounded_default(self, monkeypatch):
        from repro.caching.disk import MAX_BYTES_ENV_VAR, _default_max_bytes

        monkeypatch.delenv(MAX_BYTES_ENV_VAR, raising=False)
        assert _default_max_bytes() is None
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "bogus")
        with pytest.warns(RuntimeWarning, match=MAX_BYTES_ENV_VAR):
            assert _default_max_bytes() is None
