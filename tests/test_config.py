"""The shared environment-variable parsing policy (`repro.config`).

One helper, four callers (compile-cache size, tuner-cache size, program-
cache size, disk-cache byte budget).  The policy under test: unset or
blank means the default, valid positive integers pass through, and
anything else -- non-numeric, zero, negative -- warns (naming the
variable) and falls back to the caller's documented default instead of
silently clamping or raising.
"""

from __future__ import annotations

import pytest

from repro.config import flag_env, list_env, positive_int_env, str_env

VAR = "REPRO_TEST_POSITIVE_INT"
STR_VAR = "REPRO_TEST_STRING"


class TestPositiveIntEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert positive_int_env(VAR, 42) == 42

    def test_blank_returns_default(self, monkeypatch):
        monkeypatch.setenv(VAR, "   ")
        assert positive_int_env(VAR, 42) == 42

    def test_none_default_passes_through(self, monkeypatch):
        monkeypatch.delenv(VAR, raising=False)
        assert positive_int_env(VAR, None) is None

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv(VAR, " 17 ")
        assert positive_int_env(VAR, 42) == 17

    @pytest.mark.parametrize("raw", ["many", "0", "-3", "1.5"])
    def test_invalid_warns_and_defaults(self, monkeypatch, raw):
        monkeypatch.setenv(VAR, raw)
        with pytest.warns(RuntimeWarning, match=VAR):
            assert positive_int_env(VAR, 42) == 42

    def test_invalid_note_overrides_warning_tail(self, monkeypatch):
        monkeypatch.setenv(VAR, "nope")
        with pytest.warns(RuntimeWarning, match="stays unbounded"):
            assert positive_int_env(VAR, None, invalid_note="stays unbounded") is None


class TestStrEnv:
    def test_unset_and_blank_return_default(self, monkeypatch):
        monkeypatch.delenv(STR_VAR, raising=False)
        assert str_env(STR_VAR) == ""
        assert str_env(STR_VAR, "fallback") == "fallback"
        monkeypatch.setenv(STR_VAR, "   ")
        assert str_env(STR_VAR, "fallback") == "fallback"

    def test_strips_and_optionally_lowercases(self, monkeypatch):
        monkeypatch.setenv(STR_VAR, "  Fused ")
        assert str_env(STR_VAR) == "Fused"
        assert str_env(STR_VAR, lower=True) == "fused"

    def test_default_is_never_lowercased(self, monkeypatch):
        monkeypatch.delenv(STR_VAR, raising=False)
        assert str_env(STR_VAR, "KeepCase", lower=True) == "KeepCase"


class TestListEnv:
    def test_unset_returns_default_tuple(self, monkeypatch):
        monkeypatch.delenv(STR_VAR, raising=False)
        assert list_env(STR_VAR) == ()
        assert list_env(STR_VAR, ["a", "b"]) == ("a", "b")

    def test_splits_strips_and_drops_empties(self, monkeypatch):
        monkeypatch.setenv(STR_VAR, " default , optimized ,, fused ,")
        assert list_env(STR_VAR) == ("default", "optimized", "fused")

    def test_separator_only_counts_as_unset(self, monkeypatch):
        monkeypatch.setenv(STR_VAR, " , ,")
        assert list_env(STR_VAR, ["fallback"]) == ("fallback",)


class TestFlagEnv:
    @pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
    def test_truthy(self, monkeypatch, raw):
        monkeypatch.setenv(STR_VAR, raw)
        assert flag_env(STR_VAR) is True

    @pytest.mark.parametrize("raw", ["0", "False", "no", "off"])
    def test_falsy(self, monkeypatch, raw):
        monkeypatch.setenv(STR_VAR, raw)
        assert flag_env(STR_VAR, True) is False

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(STR_VAR, raising=False)
        assert flag_env(STR_VAR) is False
        assert flag_env(STR_VAR, True) is True

    def test_invalid_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv(STR_VAR, "ture")
        with pytest.warns(RuntimeWarning, match=STR_VAR):
            assert flag_env(STR_VAR) is False


class TestCallerWiring:
    """Each consolidated caller still reads its documented variable/default."""

    def test_program_cache_bound(self, monkeypatch):
        from repro.simulators.noise_program import (
            PROGRAM_CACHE_SIZE_ENV_VAR,
            _program_cache_bound,
        )

        monkeypatch.setenv(PROGRAM_CACHE_SIZE_ENV_VAR, "7")
        assert _program_cache_bound() == 7
        # Every-call read policy: a later change takes effect immediately,
        # no module reload, no cache clear.
        monkeypatch.setenv(PROGRAM_CACHE_SIZE_ENV_VAR, "9")
        assert _program_cache_bound() == 9
        monkeypatch.delenv(PROGRAM_CACHE_SIZE_ENV_VAR)
        assert _program_cache_bound() == 256

    def test_compile_cache_default(self, monkeypatch):
        from repro.core.pipeline import COMPILE_CACHE_SIZE_ENV_VAR, _default_cache_size

        monkeypatch.delenv(COMPILE_CACHE_SIZE_ENV_VAR, raising=False)
        assert _default_cache_size() == 4096
        monkeypatch.setenv(COMPILE_CACHE_SIZE_ENV_VAR, "11")
        assert _default_cache_size() == 11

    def test_tuner_cache_default(self, monkeypatch):
        from repro.compiler.autotune import (
            TUNER_CACHE_SIZE_ENV_VAR,
            _default_tuner_cache_size,
        )

        monkeypatch.delenv(TUNER_CACHE_SIZE_ENV_VAR, raising=False)
        assert _default_tuner_cache_size() == 8192
        monkeypatch.setenv(TUNER_CACHE_SIZE_ENV_VAR, "13")
        assert _default_tuner_cache_size() == 13

    def test_disk_cache_max_bytes_unbounded_default(self, monkeypatch):
        from repro.caching.disk import MAX_BYTES_ENV_VAR, _default_max_bytes

        monkeypatch.delenv(MAX_BYTES_ENV_VAR, raising=False)
        assert _default_max_bytes() is None
        monkeypatch.setenv(MAX_BYTES_ENV_VAR, "bogus")
        with pytest.warns(RuntimeWarning, match=MAX_BYTES_ENV_VAR):
            assert _default_max_bytes() is None

    def test_sim_kernel_reads_through_str_env(self, monkeypatch):
        from repro.simulators.backend import SIM_KERNEL_ENV_VAR, active_simulation_kernel

        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "  REFERENCE ")
        assert active_simulation_kernel() == "reference"
        monkeypatch.delenv(SIM_KERNEL_ENV_VAR)
        assert active_simulation_kernel() == "fused"

    def test_array_backend_reads_through_str_env(self, monkeypatch):
        from repro.simulators.array_ops import ARRAY_BACKEND_ENV_VAR, active_array_backend

        monkeypatch.setenv(ARRAY_BACKEND_ENV_VAR, " NumPy ")
        assert active_array_backend().name == "numpy"

    def test_autotune_candidates_read_through_list_env(self, monkeypatch):
        from repro.compiler.autotune import (
            CANDIDATES_ENV_VAR,
            _DEFAULT_CANDIDATES,
            default_candidate_pipelines,
        )

        monkeypatch.setenv(CANDIDATES_ENV_VAR, " optimized , fused ")
        assert default_candidate_pipelines() == ("optimized", "fused")
        monkeypatch.delenv(CANDIDATES_ENV_VAR)
        assert default_candidate_pipelines() == _DEFAULT_CANDIDATES

    def test_disk_cache_dir_reads_through_str_env(self, tmp_path, monkeypatch):
        from repro.caching import disk

        monkeypatch.setenv(disk.CACHE_DIR_ENV_VAR, f" {tmp_path} ")
        disk.reset_disk_cache_configuration()
        try:
            cache = disk.get_global_disk_cache()
            assert cache is not None
            monkeypatch.delenv(disk.CACHE_DIR_ENV_VAR)
            assert disk.get_global_disk_cache() is None
        finally:
            disk.reset_disk_cache_configuration()
