"""Tests for unitary utilities (random sampling, fidelities, factoring, synthesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import standard
from repro.gates.parametric import rx, ry, rz, u3
from repro.gates.unitary import (
    allclose_up_to_global_phase,
    average_gate_fidelity,
    embed_unitary,
    hilbert_schmidt_fidelity,
    is_hermitian,
    is_unitary,
    kron_n,
    nearest_kronecker_product,
    process_fidelity_from_hs,
    random_special_unitary,
    random_su4,
    random_unitary,
    remove_global_phase,
    u3_angles_from_unitary,
    unitary_distance,
    zyz_angles,
)

ANGLES = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)


class TestPredicates:
    def test_is_unitary_accepts_unitaries(self):
        assert is_unitary(standard.H)
        assert is_unitary(standard.CZ)
        assert is_unitary(np.eye(8))

    def test_is_unitary_rejects_non_unitaries(self):
        assert not is_unitary(np.array([[1, 0], [0, 2]]))
        assert not is_unitary(np.ones((2, 3)))
        assert not is_unitary(np.ones(4))

    def test_is_hermitian(self):
        assert is_hermitian(standard.X)
        assert is_hermitian(standard.Z)
        assert not is_hermitian(standard.S)


class TestRandomSampling:
    @pytest.mark.parametrize("dim", [2, 4, 8])
    def test_random_unitary_is_unitary(self, dim, rng):
        assert is_unitary(random_unitary(dim, rng))

    def test_random_special_unitary_has_unit_determinant(self, rng):
        for dim in (2, 4):
            det = np.linalg.det(random_special_unitary(dim, rng))
            assert det == pytest.approx(1.0, abs=1e-9)

    def test_random_su4_shape_and_determinant(self, rng):
        matrix = random_su4(rng)
        assert matrix.shape == (4, 4)
        assert np.linalg.det(matrix) == pytest.approx(1.0, abs=1e-9)

    def test_seeded_sampling_is_deterministic(self):
        a = random_unitary(4, np.random.default_rng(5))
        b = random_unitary(4, np.random.default_rng(5))
        assert np.allclose(a, b)

    def test_haar_spectrum_is_roughly_uniform(self, rng):
        # Eigenvalue phases of Haar unitaries are uniform on the circle;
        # a crude check that the mean phase is near zero over many samples.
        phases = []
        for _ in range(50):
            eigenvalues = np.linalg.eigvals(random_unitary(4, rng))
            phases.extend(np.angle(eigenvalues))
        assert abs(np.mean(phases)) < 0.3


class TestFidelities:
    def test_hs_fidelity_of_identical_unitaries_is_one(self, rng):
        matrix = random_unitary(4, rng)
        assert hilbert_schmidt_fidelity(matrix, matrix) == pytest.approx(1.0)

    def test_hs_fidelity_ignores_global_phase(self, rng):
        matrix = random_unitary(4, rng)
        assert hilbert_schmidt_fidelity(matrix, np.exp(1j * 0.7) * matrix) == pytest.approx(1.0)

    def test_hs_fidelity_of_orthogonal_gates(self):
        assert hilbert_schmidt_fidelity(np.eye(2), standard.X) == pytest.approx(0.0)

    def test_average_gate_fidelity_bounds(self, rng):
        a = random_unitary(4, rng)
        b = random_unitary(4, rng)
        value = average_gate_fidelity(a, b)
        assert 0.0 <= value <= 1.0
        assert average_gate_fidelity(a, a) == pytest.approx(1.0)

    def test_process_fidelity_is_square_of_hs(self):
        assert process_fidelity_from_hs(0.9) == pytest.approx(0.81)

    def test_unitary_distance_complements_fidelity(self, rng):
        matrix = random_unitary(4, rng)
        assert unitary_distance(matrix, matrix) == pytest.approx(0.0, abs=1e-9)


class TestGlobalPhase:
    def test_remove_global_phase_largest_entry_real(self, rng):
        matrix = random_unitary(4, rng) * np.exp(1j * 1.3)
        cleaned = remove_global_phase(matrix)
        index = np.unravel_index(np.argmax(np.abs(cleaned)), cleaned.shape)
        assert cleaned[index].imag == pytest.approx(0.0, abs=1e-9)

    def test_allclose_up_to_global_phase(self, rng):
        matrix = random_unitary(4, rng)
        assert allclose_up_to_global_phase(matrix, np.exp(0.42j) * matrix)
        assert not allclose_up_to_global_phase(matrix, random_unitary(4, rng))

    def test_allclose_shape_mismatch(self):
        assert not allclose_up_to_global_phase(np.eye(2), np.eye(4))


class TestKronAndEmbedding:
    def test_kron_n_matches_numpy(self):
        assert np.allclose(kron_n(standard.X, standard.Z), np.kron(standard.X, standard.Z))
        assert np.allclose(kron_n(standard.H), standard.H)

    def test_embed_single_qubit_gate(self):
        full = embed_unitary(standard.X, [1], 2)
        assert np.allclose(full, np.kron(np.eye(2), standard.X))
        full0 = embed_unitary(standard.X, [0], 2)
        assert np.allclose(full0, np.kron(standard.X, np.eye(2)))

    def test_embed_two_qubit_gate_identity_placement(self):
        assert np.allclose(embed_unitary(standard.CNOT, [0, 1], 2), standard.CNOT)

    def test_embed_reversed_qubits_swaps_control(self):
        reversed_cnot = embed_unitary(standard.CNOT, [1, 0], 2)
        expected = np.array(
            [[1, 0, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0], [0, 1, 0, 0]], dtype=complex
        )
        assert np.allclose(reversed_cnot, expected)

    def test_embed_in_three_qubits_is_unitary(self, rng):
        gate = random_su4(rng)
        full = embed_unitary(gate, [2, 0], 3)
        assert is_unitary(full)

    def test_embed_validation_errors(self):
        with pytest.raises(ValueError):
            embed_unitary(standard.CNOT, [0], 2)
        with pytest.raises(ValueError):
            embed_unitary(standard.CNOT, [0, 0], 2)
        with pytest.raises(ValueError):
            embed_unitary(standard.CNOT, [0, 5], 2)


class TestFactoringAndSynthesis:
    def test_nearest_kronecker_product_exact_tensor(self, rng):
        a = random_unitary(2, rng)
        b = random_unitary(2, rng)
        fa, fb, residual = nearest_kronecker_product(np.kron(a, b))
        assert residual == pytest.approx(0.0, abs=1e-9)
        assert np.allclose(np.kron(fa, fb), np.kron(a, b))

    def test_nearest_kronecker_product_entangling_gate_has_residual(self):
        _, _, residual = nearest_kronecker_product(standard.CNOT)
        assert residual > 0.5

    @given(a=ANGLES, b=ANGLES, c=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_zyz_reconstruction(self, a, b, c):
        matrix = rz(a) @ ry(b) @ rz(c)
        alpha, theta, beta, phase = zyz_angles(matrix)
        rebuilt = np.exp(1j * phase) * rz(alpha) @ ry(theta) @ rz(beta)
        assert np.allclose(rebuilt, matrix, atol=1e-8)

    @given(a=ANGLES, b=ANGLES, c=ANGLES)
    @settings(max_examples=30, deadline=None)
    def test_u3_angles_roundtrip(self, a, b, c):
        target = rz(a) @ ry(b) @ rx(c)
        alpha, beta, lam = u3_angles_from_unitary(target)
        assert allclose_up_to_global_phase(u3(alpha, beta, lam), target, atol=1e-6)

    def test_u3_angles_of_identity(self):
        alpha, beta, lam = u3_angles_from_unitary(np.eye(2))
        assert allclose_up_to_global_phase(u3(alpha, beta, lam), np.eye(2))
