"""Tests for the expressivity-table / instruction-set design algorithm."""

import numpy as np
import pytest

from repro.applications.qaoa import random_zz_unitaries
from repro.applications.qv import random_su4_unitaries
from repro.calibration.model import CalibrationModel
from repro.core.expressivity import (
    CandidateGate,
    candidate_gate_grid,
    design_tradeoff_curve,
    expressivity_table,
    greedy_instruction_set,
    knee_of_curve,
)
from repro.circuits.gate import named_gate
from repro.gates.standard import SWAP


@pytest.fixture(scope="module")
def small_table(shared_decomposer):
    candidates = [
        CandidateGate("cz", named_gate("cz")),
        CandidateGate("sqrt_iswap", named_gate("sqrt_iswap")),
        CandidateGate("swap", named_gate("swap")),
    ]
    unitaries = {
        "qv": random_su4_unitaries(2, seed=1),
        "qaoa": random_zz_unitaries(2, seed=2),
        "swap": [SWAP.copy()],
    }
    return expressivity_table(unitaries, candidates, decomposer=shared_decomposer, max_layers=4)


class TestCandidateGrid:
    def test_grid_size_excludes_identity_and_adds_swap(self):
        candidates = candidate_gate_grid(3, 3, include_swap=True)
        assert len(candidates) == 3 * 3 - 1 + 1
        assert any(candidate.key == "swap" for candidate in candidates)

    def test_no_swap_option(self):
        candidates = candidate_gate_grid(3, 3, include_swap=False)
        assert all(candidate.key != "swap" for candidate in candidates)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            candidate_gate_grid(1, 3)

    def test_candidate_keys_unique(self):
        candidates = candidate_gate_grid(4, 4)
        keys = [candidate.key for candidate in candidates]
        assert len(keys) == len(set(keys))


class TestExpressivityTable:
    def test_counts_shape(self, small_table):
        assert set(small_table.applications()) == {"qv", "qaoa", "swap"}
        assert small_table.counts["qv"]["cz"].shape == (2,)

    def test_generic_unitaries_need_three_cz(self, small_table):
        assert small_table.mean_count("qv", "cz") == pytest.approx(3.0)

    def test_swap_unitary_native_with_swap_gate(self, small_table):
        assert small_table.mean_count("swap", "swap") == pytest.approx(1.0)
        assert small_table.mean_count("swap", "cz") == pytest.approx(3.0)

    def test_best_counts_improve_with_more_candidates(self, small_table):
        single = small_table.best_counts("swap", ["cz"])
        combined = small_table.best_counts("swap", ["cz", "swap"])
        assert combined.min() <= single.min()
        assert np.all(combined <= single)

    def test_selection_cost_monotone_in_selection(self, small_table):
        cz_only = small_table.selection_cost(["cz"])
        both = small_table.selection_cost(["cz", "swap"])
        assert both <= cz_only + 1e-12

    def test_selection_cost_weights(self, small_table):
        # QAOA (ZZ) unitaries need 2 CZ, QV unitaries need 3; weighting one
        # workload heavily must move the aggregate cost towards its mean.
        qaoa_heavy = small_table.selection_cost(["cz"], weights={"swap": 0.1, "qv": 0.1, "qaoa": 10.0})
        qv_heavy = small_table.selection_cost(["cz"], weights={"swap": 0.1, "qv": 10.0, "qaoa": 0.1})
        assert qaoa_heavy < qv_heavy

    def test_empty_selection_rejected(self, small_table):
        with pytest.raises(ValueError):
            small_table.best_counts("qv", [])

    def test_empty_inputs_rejected(self, shared_decomposer):
        with pytest.raises(ValueError):
            expressivity_table({}, [CandidateGate("cz", named_gate("cz"))], shared_decomposer)


class TestGreedyDesign:
    def test_single_type_picks_global_best(self, small_table):
        design = greedy_instruction_set(small_table, 1)
        assert design.num_gate_types == 1
        # Whatever is chosen must be at least as good as every alternative.
        for key in small_table.candidates:
            assert design.mean_instruction_count <= small_table.selection_cost([key]) + 1e-9

    def test_larger_sets_never_worse(self, small_table):
        costs = [
            greedy_instruction_set(small_table, size).mean_instruction_count
            for size in (1, 2, 3)
        ]
        assert costs[1] <= costs[0] + 1e-9
        assert costs[2] <= costs[1] + 1e-9

    def test_required_seed_respected(self, small_table):
        design = greedy_instruction_set(small_table, 2, required=["cz"])
        assert design.selection[0] == "cz"

    def test_required_unknown_rejected(self, small_table):
        with pytest.raises(ValueError):
            greedy_instruction_set(small_table, 2, required=["xx"])

    def test_invalid_sizes(self, small_table):
        with pytest.raises(ValueError):
            greedy_instruction_set(small_table, 0)
        with pytest.raises(ValueError):
            greedy_instruction_set(small_table, 1, required=["cz", "swap"])

    def test_swap_selected_for_swap_heavy_workload(self, small_table):
        design = greedy_instruction_set(small_table, 2, weights={"swap": 5.0})
        assert "swap" in design.selection


class TestTradeoffCurve:
    def test_curve_monotone_and_annotated(self, small_table):
        designs = design_tradeoff_curve(small_table, max_gate_types=3)
        assert [design.num_gate_types for design in designs] == [1, 2, 3]
        costs = [design.mean_instruction_count for design in designs]
        assert all(b <= a + 1e-9 for a, b in zip(costs, costs[1:]))
        model = CalibrationModel()
        for design in designs:
            assert design.calibration_hours == pytest.approx(
                model.calibration_time_hours(design.num_gate_types)
            )

    def test_knee_detection(self, small_table):
        designs = design_tradeoff_curve(small_table, max_gate_types=3)
        knee = knee_of_curve(designs, tolerance=0.05)
        assert 1 <= knee <= 3

    def test_knee_requires_designs(self):
        with pytest.raises(ValueError):
            knee_of_curve([])
