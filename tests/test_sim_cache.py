"""The two-tier simulation-result cache behind the engine's simulate nodes.

Contracts under test:

* a warm re-run of a study serves every simulate node from the memory
  tier (zero backend invocations) with bit-identical rows;
* with a cache directory, a memory-cold re-run serves every simulate
  node from the disk tier's ``sim`` namespace -- again with zero backend
  invocations and bit-identical rows -- and the dedicated ``sim_*``
  counters record the traffic;
* corrupt persisted vectors degrade to misses, never errors;
* determinism holds now that worker pools receive immutable noise
  programs instead of per-job ``Device`` deep copies (the regression
  guard for removing the deepcopy).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.caching.disk import disk_cache_for
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import (
    clear_experiment_caches,
    run_study,
    simulation_cache_stats,
)
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.backend import (
    backend_invocation_counts,
    reset_backend_invocation_counts,
)


def _study_kwargs(shared_decomposer, **overrides):
    kwargs = dict(
        application="qv",
        circuits=[qv_circuit(3, rng=np.random.default_rng(index)) for index in range(2)],
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(5, "line", seed=13),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "G3": google_instruction_set("G3"),
        },
        options=SimulationOptions(shots=900, seed=5),
        decomposer=shared_decomposer,
    )
    kwargs.update(overrides)
    return kwargs


def _rows(study):
    return [
        (name, result.metric_values, result.two_qubit_counts, result.swap_counts)
        for name, result in study.per_set.items()
    ]


class TestMemoryTier:
    def test_warm_study_skips_every_backend_invocation(self, shared_decomposer):
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        cold = run_study(**kwargs, workers=1)
        stats_cold = simulation_cache_stats()
        assert stats_cold["misses"] == 4  # 2 sets x 2 circuits
        assert stats_cold["entries"] == 4

        reset_backend_invocation_counts()
        warm = run_study(**kwargs, workers=1)
        stats_warm = simulation_cache_stats()
        assert backend_invocation_counts() == {}, "warm run must not simulate"
        assert stats_warm["hits"] == stats_cold["misses"]
        assert stats_warm["misses"] == stats_cold["misses"]
        assert _rows(warm) == _rows(cold)

    def test_distinct_options_do_not_share_entries(self, shared_decomposer):
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        run_study(**kwargs, workers=1)
        reset_backend_invocation_counts()
        run_study(
            **_study_kwargs(shared_decomposer, options=SimulationOptions(shots=901, seed=5)),
            workers=1,
        )
        assert sum(backend_invocation_counts().values()) > 0

    def test_distinct_backends_do_not_share_entries(self, shared_decomposer):
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        auto = run_study(**kwargs, workers=1)
        reset_backend_invocation_counts()
        estimated = run_study(**kwargs, workers=1, backend="estimator")
        assert _rows(estimated) != _rows(auto)
        assert backend_invocation_counts().get("estimator") == 4
        # Entries are keyed on the *effective* backend, so the explicit
        # spelling of the backend auto delegated to shares auto's entries
        # (and a delegate version bump would orphan both).
        reset_backend_invocation_counts()
        explicit = run_study(**kwargs, workers=1, backend="density-matrix")
        assert _rows(explicit) == _rows(auto)
        assert backend_invocation_counts() == {}

    def test_unregistered_backend_instance_works(self, shared_decomposer):
        """run_study accepts backend instances that were never registered
        (workers ship the instance, not a name to re-resolve)."""
        from repro.simulators.backend import EstimatorBackend

        class LocalEstimator(EstimatorBackend):
            name = "local-estimator"
            version = 1

        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        local = run_study(**kwargs, workers=1, backend=LocalEstimator())
        registered = run_study(**kwargs, workers=1, backend="estimator")
        assert _rows(local) == _rows(registered)


class TestDiskTier:
    def test_fresh_memory_state_warm_starts_from_disk(self, shared_decomposer, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        cold = run_study(**kwargs, workers=1, cache_dir=cache_dir)
        disk = disk_cache_for(cache_dir)
        assert disk.sim_writes == 4
        assert disk.sim_hits == 0
        assert disk.stats()["sim_entries"] == 4

        # Simulate a fresh process: every in-memory tier dropped.
        clear_experiment_caches()
        reset_backend_invocation_counts()
        warm = run_study(**kwargs, workers=1, cache_dir=cache_dir)
        assert backend_invocation_counts() == {}, "disk tier must satisfy every node"
        assert disk.sim_hits == 4
        assert disk.sim_writes == 4  # unchanged: hits are never re-written
        assert _rows(warm) == _rows(cold)

    def test_memory_hits_backfill_a_new_cache_dir(self, shared_decomposer, tmp_path):
        """A study that runs cache-less first must still persist its
        vectors when a later run names a cache directory."""
        cache_dir = str(tmp_path / "late-cache")
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        run_study(**kwargs, workers=1)  # memory tier only
        reset_backend_invocation_counts()
        run_study(**kwargs, workers=1, cache_dir=cache_dir)
        assert backend_invocation_counts() == {}  # served from memory...
        disk = disk_cache_for(cache_dir)
        assert disk.sim_writes == 4  # ...but still persisted to the new dir
        assert disk.stats()["sim_entries"] == 4

    def test_corrupt_simulation_entry_degrades_to_miss(self, shared_decomposer, tmp_path):
        cache_dir = str(tmp_path / "cache")
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        cold = run_study(**kwargs, workers=1, cache_dir=cache_dir)
        disk = disk_cache_for(cache_dir)
        sim_dir = disk.version_dir / "sim"
        corrupted = sorted(sim_dir.rglob("*.pkl"))
        assert len(corrupted) == 4
        for path in corrupted:
            path.write_bytes(b"not a pickle")

        clear_experiment_caches()
        reset_backend_invocation_counts()
        recovered = run_study(**kwargs, workers=1, cache_dir=cache_dir)
        assert sum(backend_invocation_counts().values()) > 0  # re-simulated
        assert _rows(recovered) == _rows(cold)


class TestNoDeviceCopyDeterminism:
    def test_worker_pools_stay_bit_identical_without_device_copies(
        self, shared_decomposer
    ):
        """Regression guard for shipping noise programs instead of Device
        deep copies to the pool: cold parallel == cold serial."""
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        serial = run_study(**kwargs, workers=1)
        clear_experiment_caches()
        parallel = run_study(**kwargs, workers=2)
        assert _rows(parallel) == _rows(serial)

    def test_cached_vectors_are_immutable(self, shared_decomposer):
        kwargs = _study_kwargs(shared_decomposer)
        clear_experiment_caches()
        run_study(**kwargs, workers=1)
        from repro.experiments.engine import _SIM_CACHE

        vector = next(iter(_SIM_CACHE.values()))
        with pytest.raises((ValueError, RuntimeError)):
            vector[0] = 1.0


class TestIdealCacheLRU:
    """The ideal-distribution cache evicts least-*recently-used*, not FIFO.

    Regression guard: hits used to leave recency untouched, so a daemon's
    hottest circuits -- the ones hit on every request -- were the first
    evicted once one-off traffic filled the bound.
    """

    def test_hit_refreshes_recency(self, monkeypatch):
        from repro.experiments import engine
        from repro.experiments.engine import ideal_cache_stats, ideal_distribution_cached

        circuits = [
            qv_circuit(2, rng=np.random.default_rng(index)) for index in range(3)
        ]
        clear_experiment_caches()
        monkeypatch.setattr(engine, "_IDEAL_CACHE_MAX_ENTRIES", 2)

        ideal_distribution_cached(circuits[0])  # miss: cache [0]
        ideal_distribution_cached(circuits[1])  # miss: cache [0, 1]
        ideal_distribution_cached(circuits[0])  # hit: refreshes 0 -> [1, 0]
        ideal_distribution_cached(circuits[2])  # miss: evicts LRU -> [0, 2]

        before = ideal_cache_stats()
        ideal_distribution_cached(circuits[0])  # must still be cached
        after = ideal_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

        ideal_distribution_cached(circuits[1])  # was evicted: a miss
        assert ideal_cache_stats()["misses"] == after["misses"] + 1

    def test_stats_report_entries_and_bound(self, monkeypatch):
        from repro.experiments import engine
        from repro.experiments.engine import ideal_cache_stats, ideal_distribution_cached

        clear_experiment_caches()
        monkeypatch.setattr(engine, "_IDEAL_CACHE_MAX_ENTRIES", 2)
        for index in range(3):
            ideal_distribution_cached(qv_circuit(2, rng=np.random.default_rng(index)))
        stats = ideal_cache_stats()
        assert stats["entries"] == 2
        assert stats["max_entries"] == 2
        assert stats["hits"] == 0
        assert stats["misses"] == 3

    def test_hit_returns_identical_vector(self):
        from repro.experiments.engine import ideal_distribution_cached

        circuit = qv_circuit(2, rng=np.random.default_rng(0))
        clear_experiment_caches()
        first = ideal_distribution_cached(circuit)
        second = ideal_distribution_cached(circuit)
        assert second is first
        with pytest.raises((ValueError, RuntimeError)):
            second[0] = 1.0
