"""Tests for the Table I / Table II data modules."""

from repro.experiments.tables import (
    s_type_parameter_table,
    table1_identities,
    table1_rows,
    table2_rows,
    verify_s_type_equivalences,
)
from repro.gates.unitary import is_unitary


class TestTable1:
    def test_rows_cover_both_vendors_and_statuses(self):
        rows = table1_rows()
        vendors = {row.vendor for row in rows}
        statuses = {row.status for row in rows}
        assert vendors == {"rigetti", "google"}
        assert statuses == {"current", "anticipated"}

    def test_every_table1_matrix_is_unitary(self):
        assert all(is_unitary(row.matrix) for row in table1_rows())

    def test_identities_all_hold(self):
        assert all(table1_identities().values())


class TestTable2:
    def test_every_instruction_set_present(self):
        names = {row.name for row in table2_rows()}
        expected = {f"S{i}" for i in range(1, 8)}
        expected |= {f"G{i}" for i in range(1, 8)}
        expected |= {f"R{i}" for i in range(1, 6)}
        expected |= {"FullXY", "FullfSim"}
        assert expected <= names

    def test_kinds_and_sizes(self):
        rows = {row.name: row for row in table2_rows()}
        assert rows["S1"].kind == "single" and rows["S1"].num_gate_types == 1
        assert rows["G7"].kind == "multi" and rows["G7"].num_gate_types == 8
        assert rows["R5"].kind == "multi" and rows["R5"].num_gate_types == 6
        assert rows["FullfSim"].kind == "continuous"

    def test_s_type_parameters_and_equivalences(self):
        table = s_type_parameter_table()
        assert set(table) == {f"S{i}" for i in range(1, 8)}
        assert all(verify_s_type_equivalences().values())
