"""Unitary equivalence of the compilation pipeline (exact mode).

Property-style tests: for small circuits and every *fixed* (discrete)
instruction set of Table II, the compiled circuit implements the original
unitary up to global phase once the layout/routing qubit permutations are
accounted for.  This pins down the end-to-end correctness of layout,
routing (including inserted SWAPs), NuOp exact decomposition and
single-qubit gate merging in one assertion.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.core.instruction_sets import (
    InstructionSet,
    google_catalogue,
    rigetti_catalogue,
)
from repro.core.pipeline import compile_circuit
from repro.devices.synthetic import synthetic_device
from repro.gates.unitary import allclose_up_to_global_phase


def _fixed_sets() -> Dict[str, InstructionSet]:
    """Every discrete (non-continuous) Table II set, vendor-disambiguated."""
    sets: Dict[str, InstructionSet] = {}
    for name, instruction_set in google_catalogue().items():
        if not instruction_set.is_continuous:
            sets[f"google:{name}"] = instruction_set
    for name, instruction_set in rigetti_catalogue().items():
        if not instruction_set.is_continuous:
            sets[f"rigetti:{name}"] = instruction_set
    return sets


def _permutation_matrix(mapping: Dict[int, int], num_qubits: int) -> np.ndarray:
    """Basis permutation sending program-qubit order to slot order.

    ``mapping[p] = s`` places program qubit ``p`` on slot ``s``; qubit 0 is
    the most significant bit of a basis index (library convention).
    """
    dim = 2**num_qubits
    matrix = np.zeros((dim, dim))
    for source in range(dim):
        bits = [(source >> (num_qubits - 1 - p)) & 1 for p in range(num_qubits)]
        target = 0
        for program, slot in mapping.items():
            target |= bits[program] << (num_qubits - 1 - slot)
        matrix[target, source] = 1.0
    return matrix


def _bell_pair() -> QuantumCircuit:
    return QuantumCircuit(2, name="bell").h(0).cx(0, 1)


def _three_qubit_mixed() -> QuantumCircuit:
    """Three-qubit circuit whose 0-2 interactions force routing on a line."""
    circuit = QuantumCircuit(3, name="mixed3")
    circuit.h(0).cx(0, 2).rz(0.3, 1).cz(1, 2).swap(0, 1).cx(2, 0)
    return circuit


def _random_su4_circuit() -> QuantumCircuit:
    """Two-qubit circuit with a Haar-ish random SU(4) operation."""
    rng = np.random.default_rng(42)
    matrix = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
    unitary, _ = np.linalg.qr(matrix)
    return QuantumCircuit(2, name="su4").unitary(unitary, [0, 1])


CIRCUITS = {
    "bell": _bell_pair,
    "mixed3": _three_qubit_mixed,
    "su4": _random_su4_circuit,
}


@pytest.mark.parametrize("set_key", sorted(_fixed_sets()))
@pytest.mark.parametrize("circuit_key", sorted(CIRCUITS))
def test_compiled_unitary_matches_original(set_key, circuit_key, shared_decomposer):
    instruction_set = _fixed_sets()[set_key]
    circuit = CIRCUITS[circuit_key]()
    device = synthetic_device(4, "line", seed=11)

    compiled = compile_circuit(
        circuit,
        device,
        instruction_set,
        decomposer=shared_decomposer,
        approximate=False,
    )

    # The compiled circuit may only use the set's hardware gate types.
    allowed = set(instruction_set.type_keys())
    for operation in compiled.circuit:
        if operation.is_two_qubit:
            assert operation.gate.type_key in allowed

    original = circuit.to_unitary()
    compiled_unitary = compiled.circuit.to_unitary()
    initial = _permutation_matrix(compiled.initial_mapping, circuit.num_qubits)
    final = _permutation_matrix(compiled.final_mapping, circuit.num_qubits)
    expected = final @ original @ initial.T
    assert allclose_up_to_global_phase(compiled_unitary, expected, atol=5e-3)


def test_routing_permutations_are_required(shared_decomposer):
    """Sanity check that the permutation bookkeeping is not vacuous.

    At least one Table II compilation of the routing-heavy circuit must
    produce a non-identity initial or final mapping; otherwise the
    equivalence test above would never exercise the permutation matrices.
    """
    device = synthetic_device(4, "line", seed=11)
    nontrivial = False
    for instruction_set in _fixed_sets().values():
        compiled = compile_circuit(
            _three_qubit_mixed(),
            device,
            instruction_set,
            decomposer=shared_decomposer,
            approximate=False,
        )
        identity = {q: q for q in range(3)}
        if compiled.initial_mapping != identity or compiled.final_mapping != identity:
            nontrivial = True
            break
    assert nontrivial
