"""Tests for the text visualization primitives and figure renderers."""

import numpy as np
import pytest

from repro.experiments.fig11 import Figure11aConfig, run_figure11a
from repro.experiments.runner import InstructionSetResult, StudyResult
from repro.calibration.tradeoff import TradeoffPoint
from repro.visualization import (
    bar_chart,
    heatmap,
    histogram,
    line_plot,
    render_figure11a,
    render_study,
    render_table,
    render_tradeoff,
    sparkline,
)


class TestBarChart:
    def test_contains_every_label_and_value(self):
        chart = bar_chart({"S1": 0.5, "G7": 0.75})
        assert "S1" in chart and "G7" in chart
        assert "0.500" in chart and "0.750" in chart

    def test_bar_length_proportional_to_value(self):
        chart = bar_chart({"small": 1.0, "large": 2.0}, width=20)
        small_line, large_line = chart.splitlines()[:2]
        assert large_line.count("#") == 2 * small_line.count("#")

    def test_reference_marker_present(self):
        chart = bar_chart({"a": 0.9}, reference=2.0 / 3.0)
        assert "|" in chart
        assert "threshold" in chart

    def test_empty_input(self):
        assert bar_chart({}) == "(no data)"

    def test_zero_values_do_not_crash(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart


class TestHeatmap:
    def test_shape_and_labels(self):
        grid = np.arange(6, dtype=float).reshape(2, 3)
        text = heatmap(grid, row_labels=["r0", "r1"], column_labels=["c0", "c1", "c2"])
        assert "r0" in text and "c2" in text
        # header + separator + two data rows
        assert len(text.splitlines()) == 4

    def test_title_included(self):
        text = heatmap(np.zeros((2, 2)), title="my title")
        assert text.splitlines()[0] == "my title"

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), row_labels=["only-one"])

    def test_constant_grid(self):
        text = heatmap(np.ones((3, 3)))
        assert "1.00" in text

    def test_invert_changes_shading(self):
        grid = np.array([[0.0, 10.0]])
        normal = heatmap(grid, shaded=True, invert=False)
        inverted = heatmap(grid, shaded=True, invert=True)
        assert normal != inverted


class TestSparklineAndHistogram:
    def test_sparkline_length(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_sparkline_monotone_shades(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == " " and line[-1] == "@"

    def test_histogram_counts_sum(self):
        values = [0.1, 0.2, 0.3, 0.4, 0.9]
        text = histogram(values, bins=3, title="errors")
        assert "errors" in text
        assert len(text.splitlines()) == 4

    def test_histogram_empty(self):
        assert histogram([]) == "(no data)"


class TestLinePlot:
    def test_basic_plot_contains_legend_and_axes(self):
        text = line_plot([1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}, x_label="types")
        assert "legend" in text
        assert "types" in text

    def test_log_scale(self):
        text = line_plot([1, 10, 100], {"circuits": [1e3, 1e6, 1e9]}, logy=True)
        assert "1e+09" in text or "1e+9" in text or "1e+0" in text

    def test_empty(self):
        assert line_plot([], {}) == "(no data)"

    def test_single_point(self):
        text = line_plot([5.0], {"s": [2.0]})
        assert "legend" in text


class TestRenderTable:
    def test_column_alignment_and_order(self):
        rows = [{"name": "S1", "value": 0.5}, {"name": "G7", "value": 0.75}]
        table = render_table(rows)
        lines = table.splitlines()
        assert lines[0].strip().startswith("name")
        assert len(lines) == 4

    def test_explicit_columns_subset(self):
        rows = [{"a": 1, "b": 2}]
        table = render_table(rows, columns=["b"])
        assert "a" not in table.splitlines()[0]

    def test_empty(self):
        assert render_table([]) == "(no rows)"


def _fake_study() -> StudyResult:
    study = StudyResult(application="qv", metric_name="HOP")
    for name, value, count in (("S1", 0.62, 7.0), ("G7", 0.71, 4.0)):
        result = InstructionSetResult(instruction_set=name, metric_name="HOP")
        result.metric_values = [value]
        result.two_qubit_counts = [int(count)]
        study.per_set[name] = result
    return study


class TestFigureRenderers:
    def test_render_study_includes_counts_and_threshold(self):
        text = render_study(_fake_study(), reference=2.0 / 3.0)
        assert "qv (HOP)" in text
        assert "S1" in text and "G7" in text
        assert "instruction counts" in text

    def test_render_figure11a(self):
        result = run_figure11a(Figure11aConfig(device_qubits=[2, 54], gate_type_counts=[1, 4, 16]))
        text = render_figure11a(result)
        assert "Figure 11a" in text
        assert "54q" in text

    def test_render_tradeoff(self):
        points = [
            TradeoffPoint(2, 6.0, 1000, {"QV": 0.01}),
            TradeoffPoint(8, 18.0, 4000, {"QV": 0.09}),
        ]
        text = render_tradeoff(points)
        assert "#types" in text
        assert "Figure 11b" in text

    def test_render_tradeoff_empty(self):
        assert render_tradeoff([]) == "(no tradeoff points)"
