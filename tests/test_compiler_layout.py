"""Tests for the placement (layout) pass."""

import pytest

from repro.applications import qv_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.compiler.layout import (
    assign_program_qubits,
    choose_layout,
    choose_physical_subset,
    score_subset,
)
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device


class TestSubsetSelection:
    def test_chosen_subset_is_connected_and_right_size(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        subset = choose_physical_subset(device, 4, ["syc"])
        assert len(subset) == 4
        assert device.topology.is_connected_subset(subset)

    def test_subset_prefers_high_fidelity_edges(self):
        device = aspen8_device()
        # Scores should favour subsets away from the dead XY edges when XY is
        # the only gate type considered.
        good = score_subset(device, [2, 3, 4], ["xy(3.141593)"])
        bad = score_subset(device, [0, 1, 2], ["xy(3.141593)"])
        assert good > bad

    def test_score_of_disconnected_subset_is_negative(self):
        device = sycamore_device()
        assert score_subset(device, [0, 53]) == -1.0

    def test_impossible_size_raises(self):
        device = sycamore_device()
        with pytest.raises(ValueError):
            choose_physical_subset(device, 55)


class TestProgramAssignment:
    def test_all_program_qubits_assigned_distinct_slots(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        circuit = qv_circuit(4, rng=1)
        layout = choose_layout(circuit, device, ["syc"])
        assert sorted(layout.program_to_slot.keys()) == list(range(4))
        assert len(set(layout.program_to_slot.values())) == 4
        assert layout.num_slots == 4

    def test_slot_and_physical_lookup(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        circuit = QuantumCircuit(3).cz(0, 1).cz(1, 2)
        layout = choose_layout(circuit, device)
        for program_qubit in range(3):
            slot = layout.slot_of(program_qubit)
            assert layout.physical_of(program_qubit) == layout.physical_qubits[slot]

    def test_interacting_qubits_placed_close(self):
        device = sycamore_device()
        device.register_gate_type("syc")
        circuit = QuantumCircuit(4).cz(0, 1).cz(0, 1).cz(0, 1).cz(2, 3)
        placement = assign_program_qubits(circuit, device, choose_physical_subset(device, 4))
        physical = choose_physical_subset(device, 4)
        q0 = physical[placement[0]]
        q1 = physical[placement[1]]
        assert device.topology.distance(q0, q1) <= 2
