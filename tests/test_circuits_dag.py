"""Tests for moments, the circuit DAG and serialisation."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import (
    CircuitDAG,
    as_moments,
    interaction_pairs,
    moments_to_circuit,
)
from repro.circuits import qasm
from repro.gates.unitary import allclose_up_to_global_phase, random_su4


class TestMoments:
    def test_parallel_gates_share_a_moment(self):
        circuit = QuantumCircuit(4).h(0).h(1).cz(0, 1).cz(2, 3)
        moments = as_moments(circuit)
        assert len(moments) == 2
        assert len(moments[0]) == 3  # h(0), h(1), cz(2,3)
        assert len(moments[1]) == 1

    def test_moments_respect_dependencies(self):
        circuit = QuantumCircuit(2).h(0).cz(0, 1).h(1)
        moments = as_moments(circuit)
        assert [len(m) for m in moments] == [1, 1, 1]

    def test_moments_roundtrip_preserves_unitary(self, rng):
        circuit = QuantumCircuit(3)
        circuit.h(0).cz(0, 1).unitary(random_su4(rng), [1, 2]).rz(0.3, 0)
        rebuilt = moments_to_circuit(as_moments(circuit), 3)
        assert allclose_up_to_global_phase(rebuilt.to_unitary(), circuit.to_unitary())

    def test_empty_circuit_has_no_moments(self):
        assert as_moments(QuantumCircuit(2)) == []


class TestCircuitDAG:
    def test_front_layer_and_successors(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).cz(1, 2)
        dag = CircuitDAG(circuit)
        assert dag.front_layer() == [0]
        assert dag.successors(0) == [1]
        assert dag.predecessors(2) == [1]
        assert len(dag) == 3

    def test_topological_layers_match_moments(self):
        circuit = QuantumCircuit(4).h(0).h(2).cz(0, 1).cz(2, 3).cz(1, 2)
        dag = CircuitDAG(circuit)
        layers = dag.topological_layers()
        assert len(layers) == len(as_moments(circuit))

    def test_critical_path_length(self):
        circuit = QuantumCircuit(2).h(0).cz(0, 1).h(1).cz(0, 1)
        assert CircuitDAG(circuit).critical_path_length() == 4
        assert CircuitDAG(QuantumCircuit(2)).critical_path_length() == 0

    def test_interaction_graph_weights(self):
        circuit = QuantumCircuit(3).cz(0, 1).cz(0, 1).cz(1, 2)
        graph = CircuitDAG(circuit).two_qubit_interaction_graph()
        assert graph.edges[0, 1]["weight"] == 2
        assert graph.edges[1, 2]["weight"] == 1

    def test_interaction_pairs(self):
        circuit = QuantumCircuit(3).cz(0, 1).h(2).cz(1, 2)
        assert interaction_pairs(circuit) == [(0, 1), (1, 2)]


class TestQasmSerialisation:
    def test_roundtrip_named_and_parametric_gates(self):
        circuit = QuantumCircuit(3, name="serialise_me")
        circuit.h(0).cz(0, 1).fsim(0.25, 0.5, 1, 2).u3(0.1, 0.2, 0.3, 0).swap(0, 2)
        text = qasm.dumps(circuit)
        rebuilt = qasm.loads(text)
        assert rebuilt.name == "serialise_me"
        assert rebuilt.num_qubits == 3
        assert len(rebuilt) == len(circuit)
        assert allclose_up_to_global_phase(rebuilt.to_unitary(), circuit.to_unitary())

    def test_roundtrip_raw_unitary_gate(self, rng):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_su4(rng), [0, 1], name="su4")
        rebuilt = qasm.loads(qasm.dumps(circuit))
        assert allclose_up_to_global_phase(rebuilt.to_unitary(), circuit.to_unitary())

    def test_loads_rejects_missing_header(self):
        with pytest.raises(ValueError):
            qasm.loads("qubits 2;\ncz q[0], q[1];")

    def test_loads_rejects_missing_qubit_count(self):
        with pytest.raises(ValueError):
            qasm.loads("REPROQASM 1.0;\nname x;\n")
