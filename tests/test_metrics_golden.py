"""Golden-value tests for the metrics layer.

Each test evaluates a metric on a distribution whose value can be computed
by hand (uniform, delta, GHZ) and asserts the exact expected number, so a
regression in any metric shows up as a concrete wrong value rather than a
drifting statistical test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.hop import (
    heavy_output_probability,
    heavy_output_set,
    ideal_heavy_output_probability,
)
from repro.metrics.xeb import (
    cross_entropy_difference,
    linear_xeb_fidelity,
    normalized_linear_xeb_fidelity,
)


def uniform(num_qubits: int) -> np.ndarray:
    dim = 2**num_qubits
    return np.full(dim, 1.0 / dim)


def delta(num_qubits: int, outcome: int = 0) -> np.ndarray:
    dim = 2**num_qubits
    distribution = np.zeros(dim)
    distribution[outcome] = 1.0
    return distribution


def ghz(num_qubits: int) -> np.ndarray:
    """Ideal GHZ output: half the mass on |0...0>, half on |1...1>."""
    dim = 2**num_qubits
    distribution = np.zeros(dim)
    distribution[0] = 0.5
    distribution[dim - 1] = 0.5
    return distribution


class TestLinearXeb:
    def test_uniform_measured_uniform_ideal_is_zero(self):
        # F = D * sum(1/D * 1/D) - 1 = D * D/D^2 - 1 = 0, for any size.
        for n in (1, 2, 3, 4):
            assert linear_xeb_fidelity(uniform(n), uniform(n)) == pytest.approx(0.0)

    def test_delta_measured_delta_ideal_is_dim_minus_one(self):
        # F = D * 1 - 1 = D - 1.
        for n in (1, 2, 3):
            assert linear_xeb_fidelity(delta(n), delta(n)) == pytest.approx(2**n - 1)

    def test_uniform_measured_delta_ideal_is_zero(self):
        # F = D * (1/D) * 1 - 1 = 0: a depolarised execution scores zero.
        assert linear_xeb_fidelity(uniform(3), delta(3)) == pytest.approx(0.0)

    def test_disjoint_delta_measured_is_minus_one(self):
        # Measured mass entirely off the ideal support: F = -1.
        assert linear_xeb_fidelity(delta(2, outcome=3), delta(2, outcome=0)) == pytest.approx(-1.0)

    def test_ghz_measured_ghz_ideal(self):
        # F = D * (0.25 + 0.25) - 1 = D/2 - 1.
        for n in (2, 3, 4):
            assert linear_xeb_fidelity(ghz(n), ghz(n)) == pytest.approx(2**n / 2 - 1)

    def test_normalized_xeb_is_one_for_perfect_execution(self):
        for ideal in (ghz(3), delta(3)):
            assert normalized_linear_xeb_fidelity(ideal, ideal) == pytest.approx(1.0)

    def test_normalized_xeb_is_zero_for_depolarised_execution(self):
        assert normalized_linear_xeb_fidelity(uniform(3), ghz(3)) == pytest.approx(0.0)

    def test_normalized_xeb_guard_on_uniform_ideal(self):
        # Ideal self-XEB of the uniform distribution is 0; the guarded
        # normalisation returns 0 instead of dividing by zero.
        assert normalized_linear_xeb_fidelity(delta(2), uniform(2)) == 0.0

    def test_ghz_half_mass_measured(self):
        # Measured puts 0.5 on |0..0> and spreads 0.5 uniformly, so
        # sum(p_m * p_i) = (0.5 + 0.5/D)*0.5 + (0.5/D)*0.5 = 1/4 + 1/(2D)
        # and F = D/4 - 1/2.
        for n in (2, 3):
            dim = 2**n
            measured = np.full(dim, 0.5 / dim)
            measured[0] += 0.5
            expected = dim / 4 - 0.5
            assert linear_xeb_fidelity(measured, ghz(n)) == pytest.approx(expected)


class TestHeavyOutputProbability:
    def test_uniform_ideal_has_empty_heavy_set(self):
        # Every outcome sits exactly at the median; none is strictly above.
        assert heavy_output_set(uniform(3)) == set()
        assert heavy_output_probability(uniform(3), uniform(3)) == pytest.approx(0.0)

    def test_delta_ideal_heavy_set_is_the_peak(self):
        assert heavy_output_set(delta(3, outcome=5)) == {5}
        assert heavy_output_probability(delta(3, outcome=5), delta(3, outcome=5)) == pytest.approx(1.0)
        # Uniform measured places 1/D mass on the single heavy outcome.
        assert heavy_output_probability(uniform(3), delta(3, outcome=5)) == pytest.approx(1 / 8)

    def test_ghz_ideal_heavy_set(self):
        # Median of (0.5, 0, ..., 0, 0.5) is 0 for n >= 2: heavy set is the
        # two GHZ outcomes.
        for n in (2, 3, 4):
            dim = 2**n
            assert heavy_output_set(ghz(n)) == {0, dim - 1}
            assert ideal_heavy_output_probability(ghz(n)) == pytest.approx(1.0)
            assert heavy_output_probability(uniform(n), ghz(n)) == pytest.approx(2 / dim)

    def test_measured_half_on_heavy_set(self):
        measured = np.array([0.25, 0.25, 0.25, 0.25])
        ideal = np.array([0.5, 0.0, 0.0, 0.5])
        assert heavy_output_probability(measured, ideal) == pytest.approx(0.5)


class TestCrossEntropyDifference:
    def test_perfect_execution_scores_one(self):
        ideal = np.array([0.5, 0.25, 0.125, 0.125])
        assert cross_entropy_difference(ideal, ideal) == pytest.approx(1.0)

    def test_depolarised_execution_scores_zero(self):
        ideal = np.array([0.5, 0.25, 0.125, 0.125])
        assert cross_entropy_difference(uniform(2), ideal) == pytest.approx(0.0)

    def test_uniform_ideal_guard(self):
        # H(uniform, ideal) == H(ideal, ideal) when the ideal is uniform;
        # the guarded denominator returns 0.
        assert cross_entropy_difference(delta(2), uniform(2)) == 0.0

    def test_halfway_mixture_scores_half(self):
        # XED is linear in the measured distribution, so an equal mixture
        # of the ideal and the uniform distribution scores exactly 0.5.
        ideal = np.array([0.5, 0.25, 0.125, 0.125])
        mixture = 0.5 * ideal + 0.5 * uniform(2)
        assert cross_entropy_difference(mixture, ideal) == pytest.approx(0.5)
