"""End-to-end integration tests exercising the whole stack together."""

import numpy as np
import pytest

from repro.applications import qaoa_maxcut_circuit, qft_benchmark_circuit, qft_target_value
from repro.core.instruction_sets import (
    google_instruction_set,
    rigetti_instruction_set,
    single_gate_set,
)
from repro.core.pipeline import compile_circuit
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device
from repro.experiments.runner import SimulationOptions, simulate_compiled
from repro.metrics.success import success_rate
from repro.metrics.xeb import cross_entropy_difference
from repro.simulators.statevector import ideal_probabilities


class TestEndToEndSycamore:
    def test_qft_success_rate_reasonable_and_multiset_helps_counts(self, shared_decomposer):
        device = sycamore_device()
        target = qft_target_value(3)
        circuit = qft_benchmark_circuit(3, target)

        compiled_single = compile_circuit(
            circuit, device, single_gate_set("S1"), decomposer=shared_decomposer
        )
        compiled_multi = compile_circuit(
            circuit, device, google_instruction_set("G7"), decomposer=shared_decomposer
        )
        assert compiled_multi.two_qubit_gate_count <= compiled_single.two_qubit_gate_count

        options = SimulationOptions(shots=2000, seed=1)
        measured = simulate_compiled(compiled_multi, device, options)
        value = success_rate(measured, target)
        assert 0.5 < value <= 1.0

    def test_noise_hurts_compared_to_ideal(self, shared_decomposer):
        device = sycamore_device()
        circuit = qaoa_maxcut_circuit(3, rng=np.random.default_rng(3))
        compiled = compile_circuit(
            circuit, device, google_instruction_set("G3"), decomposer=shared_decomposer
        )
        measured = simulate_compiled(compiled, device, SimulationOptions(shots=3000, seed=2))
        ideal = ideal_probabilities(circuit)
        xed = cross_entropy_difference(measured, ideal)
        assert xed < 1.0
        assert xed > -0.2


class TestEndToEndAspen:
    def test_rigetti_pipeline_runs_and_respects_connectivity(self, shared_decomposer):
        device = aspen8_device()
        circuit = qaoa_maxcut_circuit(4, rng=np.random.default_rng(9))
        compiled = compile_circuit(
            circuit, device, rigetti_instruction_set("R5"), decomposer=shared_decomposer
        )
        for operation in compiled.circuit.two_qubit_operations():
            a, b = operation.qubits
            assert device.topology.are_connected(
                compiled.physical_qubits[a], compiled.physical_qubits[b]
            )
        measured = simulate_compiled(compiled, device, SimulationOptions(shots=1500, seed=4))
        assert measured.sum() == pytest.approx(1.0)

    def test_native_swap_set_uses_swap_when_routing(self, shared_decomposer):
        """R5/G7 include the hardware SWAP, so routed SWAPs stay one instruction."""
        device = aspen8_device()
        # A 5-qubit ring segment forces at least one routing SWAP for a
        # long-range interaction.
        from repro.circuits.circuit import QuantumCircuit

        circuit = QuantumCircuit(5)
        for a in range(5):
            for b in range(a + 1, 5):
                circuit.rzz(0.4, a, b)
        compiled = compile_circuit(
            circuit, device, rigetti_instruction_set("R5"), decomposer=shared_decomposer
        )
        if compiled.num_swaps > 0:
            assert compiled.gate_type_usage.get("SWAP", 0) >= compiled.num_swaps
