"""Shared fixtures for the test suite.

A single session-scoped :class:`NuOpDecomposer` is shared across tests so
that fidelity profiles computed once (e.g. "random SU(4) into CZ") are
reused, keeping the suite fast without changing any semantics (the
decomposer's cache is keyed by target unitary and gate type only).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.decomposer import NuOpDecomposer


@pytest.fixture(scope="session")
def shared_decomposer() -> NuOpDecomposer:
    """Session-wide NuOp decomposer with a warm cache."""
    return NuOpDecomposer(seed=7)


@pytest.fixture()
def rng() -> np.random.Generator:
    """Deterministic random generator for individual tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    """Deterministic random generator shared across a session."""
    return np.random.default_rng(99)
