"""Pipeline autotuner: scoring, verdict caching, determinism, engine wiring.

Pins the ISSUE's acceptance properties: ``pipeline="auto"`` picks a
pipeline per (circuit, instruction set) and is bit-identical to requesting
the winning pipeline by name; on the 4-qubit QV study the auto-selected
pipeline's predicted fidelity is never below the ``default`` pipeline's;
verdicts are content-addressed and reused by both cache tiers; and the
selection is bit-identical across warm/cold caches and worker counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.caching.disk import DiskCompilationCache
from repro.compiler.autotune import (
    AUTO_PIPELINE,
    AUTOTUNE_BLOB_KIND,
    TunerVerdict,
    TunerVerdictCache,
    autotune_pipeline,
    default_candidate_pipelines,
    global_tuner_cache,
    predicted_compiled_fidelity,
    tuner_verdict_key,
)
from repro.core.instruction_sets import (
    full_fsim_set,
    google_instruction_set,
    single_gate_set,
)
from repro.core.pipeline import (
    CompilationCache,
    compile_circuit,
    compile_circuit_cached,
)
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability


def _circuit(seed: int = 3, qubits: int = 4):
    return qv_circuit(qubits, rng=np.random.default_rng(seed))


def _device():
    return synthetic_device(6, "line", seed=13)


def _assert_bit_identical(a, b):
    assert len(a.circuit) == len(b.circuit)
    for left, right in zip(a.circuit, b.circuit):
        assert left.qubits == right.qubits
        assert np.array_equal(left.gate.matrix, right.gate.matrix)
    assert a.physical_qubits == b.physical_qubits
    assert a.final_mapping == b.final_mapping
    assert a.gate_type_usage == b.gate_type_usage


@pytest.fixture(autouse=True)
def _fresh_tuner_cache():
    """Every test starts with an empty process-global verdict cache."""
    global_tuner_cache().clear()
    yield
    global_tuner_cache().clear()


class TestScoring:
    def test_predicted_fidelity_in_unit_interval(self, shared_decomposer):
        device = _device()
        compiled = compile_circuit(
            _circuit(), device, google_instruction_set("G3"), decomposer=shared_decomposer
        )
        fidelity = predicted_compiled_fidelity(compiled, device)
        assert 0.0 < fidelity <= 1.0

    def test_fewer_gates_score_higher(self, shared_decomposer):
        # The same workload compiled with SU(4) pre-fusion emits fewer
        # operations; the predictor must prefer it on an otherwise equal
        # footing (same device, same calibration).
        device_a, device_b = _device(), _device()
        default = compile_circuit(
            _circuit(), device_a, google_instruction_set("G3"),
            decomposer=shared_decomposer, pipeline="default",
        )
        fused = compile_circuit(
            _circuit(), device_b, google_instruction_set("G3"),
            decomposer=shared_decomposer, pipeline="fused",
        )
        if fused.two_qubit_gate_count < default.two_qubit_gate_count:
            assert predicted_compiled_fidelity(fused, device_b) > (
                predicted_compiled_fidelity(default, device_a)
            )


class TestVerdicts:
    def test_winner_never_predicts_worse_than_default(self, shared_decomposer):
        verdict = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer,
        )
        assert "default" in [score.pipeline for score in verdict.scores]
        default_score = verdict.score_for("default")
        assert verdict.winning_fidelity() >= default_score.predicted_fidelity

    def test_verdict_does_not_touch_the_real_device(self, shared_decomposer):
        device = _device()
        before = device.calibration_fingerprint()
        autotune_pipeline(
            _circuit(), device, google_instruction_set("G3"),
            decomposer=shared_decomposer,
        )
        assert device.calibration_fingerprint() == before

    def test_auto_is_bit_identical_to_explicit_winner(self, shared_decomposer):
        verdict = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer,
        )
        device_auto, device_explicit = _device(), _device()
        auto = compile_circuit(
            _circuit(), device_auto, google_instruction_set("G3"),
            decomposer=shared_decomposer, pipeline=AUTO_PIPELINE,
        )
        explicit = compile_circuit(
            _circuit(), device_explicit, google_instruction_set("G3"),
            decomposer=shared_decomposer, pipeline=verdict.pipeline,
        )
        assert auto.pipeline_name == verdict.pipeline
        _assert_bit_identical(auto, explicit)
        assert (
            device_auto.calibration_fingerprint()
            == device_explicit.calibration_fingerprint()
        )

    def test_verdict_key_tracks_calibration_and_candidates(self, shared_decomposer):
        kwargs = dict(
            decomposer=shared_decomposer,
            approximate=True,
            use_noise_adaptivity=True,
            merge_single_qubit=True,
            error_scale=1.0,
            max_layers=None,
        )
        base = tuner_verdict_key(
            _circuit(), _device(), google_instruction_set("G3"),
            candidates=("default", "optimized"), **kwargs,
        )
        assert base == tuner_verdict_key(
            _circuit(), _device(), google_instruction_set("G3"),
            candidates=("default", "optimized"), **kwargs,
        )
        assert base != tuner_verdict_key(
            _circuit(), _device(), google_instruction_set("G3"),
            candidates=("default", "fused"), **kwargs,
        )
        drifted = _device()
        drifted.ensure_gate_types(["cz"])
        assert base != tuner_verdict_key(
            _circuit(), drifted, google_instruction_set("G3"),
            candidates=("default", "optimized"), **kwargs,
        )

    def test_candidates_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE_PIPELINES", "default, optimized")
        assert default_candidate_pipelines() == ("default", "optimized")
        monkeypatch.delenv("REPRO_AUTOTUNE_PIPELINES")
        assert "default" in default_candidate_pipelines()

    def test_empty_candidates_rejected(self, shared_decomposer):
        with pytest.raises(ValueError):
            autotune_pipeline(
                _circuit(), _device(), google_instruction_set("G3"),
                decomposer=shared_decomposer, candidates=(),
            )


class TestVerdictCaching:
    def test_memory_tier_round_trip(self, shared_decomposer):
        verdicts = TunerVerdictCache()
        first = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=verdicts,
        )
        again = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=verdicts,
        )
        assert again is first  # memory hit returns the cached object
        stats = verdicts.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_disk_tier_round_trip(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        cold = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=TunerVerdictCache(),
            cache=CompilationCache(), disk_cache=disk,
        )
        # Fresh memory tiers, same directory: the verdict (and the trial
        # compilations) must come off disk, with no new trial compiles.
        writes_before = disk.stats()["writes"]
        warm = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=TunerVerdictCache(),
            cache=CompilationCache(), disk_cache=disk,
        )
        assert isinstance(warm, TunerVerdict)
        assert warm.pipeline == cold.pipeline
        assert [score.as_row() for score in warm.scores] == [
            score.as_row() for score in cold.scores
        ]
        assert disk.stats()["writes"] == writes_before  # nothing recompiled

    def test_corrupt_verdict_blob_is_a_miss(self, tmp_path, shared_decomposer):
        disk = DiskCompilationCache(tmp_path)
        autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=TunerVerdictCache(),
            cache=CompilationCache(), disk_cache=disk,
        )
        blob_dir = disk.version_dir / AUTOTUNE_BLOB_KIND
        blobs = list(blob_dir.rglob("*.pkl"))
        assert len(blobs) == 1
        blobs[0].write_bytes(b"garbage")
        verdict = autotune_pipeline(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, verdict_cache=TunerVerdictCache(),
            cache=CompilationCache(), disk_cache=disk,
        )
        assert isinstance(verdict, TunerVerdict)  # recomputed, not crashed


class TestEngineIntegration:
    def _study_kwargs(self, shared_decomposer):
        return dict(
            application="qv",
            circuits=[_circuit(seed=index) for index in range(2)],
            metric_name="HOP",
            metric=heavy_output_probability,
            device_factory=_device,
            instruction_sets={
                "S1": single_gate_set("S1", vendor="google"),
                "G3": google_instruction_set("G3"),
            },
            options=SimulationOptions(shots=800, seed=5),
            decomposer=shared_decomposer,
        )

    def _rows(self, study):
        return [
            (
                name,
                result.metric_values,
                result.two_qubit_counts,
                result.swap_counts,
                sorted(result.gate_type_usage.items()),
                sorted(result.pipeline_usage.items()),
            )
            for name, result in study.per_set.items()
        ]

    @pytest.fixture(scope="class")
    def auto_studies(self, shared_decomposer):
        kwargs = self._study_kwargs(shared_decomposer)
        clear_experiment_caches()
        cold = run_study(**kwargs, workers=1, pipeline=AUTO_PIPELINE)
        warm = run_study(**kwargs, workers=2, pipeline=AUTO_PIPELINE)
        clear_experiment_caches()
        default = run_study(**kwargs, workers=1, pipeline="default")
        return {"cold": cold, "warm": warm, "default": default}

    def test_auto_is_deterministic_across_cache_state_and_workers(self, auto_studies):
        assert self._rows(auto_studies["cold"]) == self._rows(auto_studies["warm"])

    def test_auto_records_selected_pipelines(self, auto_studies):
        candidates = set(default_candidate_pipelines())
        for result in auto_studies["cold"].per_set.values():
            assert sum(result.pipeline_usage.values()) == len(result.metric_values)
            assert set(result.pipeline_usage) <= candidates

    def test_auto_never_emits_more_two_qubit_gates_than_default(self, auto_studies):
        # The tuner optimises predicted fidelity, which on the synthetic
        # device is dominated by the 2Q budget; selecting a pipeline that
        # *grows* the budget over 'default' would mean the scoring is wired
        # backwards.
        for name, result in auto_studies["cold"].per_set.items():
            default_counts = auto_studies["default"].per_set[name].two_qubit_counts
            assert all(
                auto_count <= default_count
                for auto_count, default_count in zip(result.two_qubit_counts, default_counts)
            )

    def test_auto_pass_stats_flow_into_study(self, auto_studies):
        study = auto_studies["cold"]
        totals = study.aggregated_pass_stats()
        assert totals  # every engine compile contributes pass statistics
        assert "nuop" in totals
        assert totals["nuop"]["runs"] == 4  # 2 circuits x 2 sets
        report = study.format_pass_stats()
        assert "pass statistics" in report
        assert "pipelines used:" in report

    def test_auto_predicted_fidelity_matches_or_beats_default(self, shared_decomposer):
        # The acceptance criterion on the 4-qubit QV study: for every
        # (circuit, instruction set) job the auto-picked pipeline's
        # predicted compiled fidelity >= the default pipeline's.
        for seed in range(2):
            for instruction_set in (
                google_instruction_set("G3"),
                full_fsim_set(),
            ):
                verdict = autotune_pipeline(
                    _circuit(seed=seed), _device(), instruction_set,
                    decomposer=shared_decomposer,
                )
                default_score = verdict.score_for("default")
                assert default_score is not None
                assert verdict.winning_fidelity() >= default_score.predicted_fidelity


class TestPinnedLayout:
    def test_pinned_layout_is_honoured_and_uncached(self, shared_decomposer):
        from repro.compiler.layout import choose_layout

        device = _device()
        pinned = choose_layout(_circuit(), device, None, 50)
        verdicts = TunerVerdictCache()
        verdict = autotune_pipeline(
            _circuit(), device, google_instruction_set("G3"),
            decomposer=shared_decomposer, layout=pinned, verdict_cache=verdicts,
        )
        assert verdict.pipeline in default_candidate_pipelines()
        # Pinned-layout verdicts bypass the verdict cache entirely (the key
        # has no layout component, so caching them would serve one layout's
        # verdict to every other layout).
        assert len(verdicts) == 0

        # pipeline="auto" with a pinned layout compiles the winner on it.
        compiled = compile_circuit(
            _circuit(), _device(), google_instruction_set("G3"),
            decomposer=shared_decomposer, layout=pinned, pipeline=AUTO_PIPELINE,
        )
        assert compiled.pipeline_name in default_candidate_pipelines()
