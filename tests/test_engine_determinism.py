"""Determinism of the parallel experiment engine.

The contract under test: with a fixed ``SimulationOptions.seed``,

* the engine with ``workers=1`` and ``workers=4`` produce bit-identical
  :class:`StudyResult` rows,
* both are bit-identical to the legacy serial double loop
  (:func:`run_instruction_set_study_reference`), including the device's
  lazily sampled calibration data (which depends on compilation order),
* warm-cache (compilation cache hit) runs agree bit-for-bit with
  cold-cache runs -- i.e. cache-hit replay leaves the device RNG in the
  same state the original compilation did.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.core.instruction_sets import (
    full_fsim_set,
    google_instruction_set,
    single_gate_set,
)
from repro.core.pipeline import global_compilation_cache
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import (
    ExperimentJob,
    StudyPlan,
    clear_experiment_caches,
    resolve_workers,
    run_study,
)
from repro.experiments.runner import (
    SimulationOptions,
    run_instruction_set_study,
    run_instruction_set_study_reference,
)
from repro.metrics.hop import heavy_output_probability


def _study_kwargs(shared_decomposer):
    circuits = [qv_circuit(3, rng=np.random.default_rng(index)) for index in range(2)]
    instruction_sets = {
        "S1": single_gate_set("S1", vendor="google"),
        "G3": google_instruction_set("G3"),
        "FullfSim": full_fsim_set(),
        "FullfSim-2x": full_fsim_set(),
    }
    return dict(
        application="qv",
        circuits=circuits,
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(5, "line", seed=13),
        instruction_sets=instruction_sets,
        options=SimulationOptions(shots=1200, seed=5),
        error_scales={"FullfSim-2x": 2.0},
        decomposer=shared_decomposer,
    )


def _rows(study):
    """Everything row-like in a StudyResult, in a bit-comparable form."""
    return [
        (
            name,
            result.metric_values,
            result.two_qubit_counts,
            result.swap_counts,
            sorted(result.gate_type_usage.items()),
        )
        for name, result in study.per_set.items()
    ]


@pytest.fixture(scope="module")
def studies(shared_decomposer):
    """Reference, serial-engine, parallel-engine and warm/cold-cache runs.

    Pinned on ``REPRO_SIM_KERNEL=reference``: the contract under test is
    bit-identity against the frozen serial loop, which only the reference
    replay kernel provides (the default fused kernel reassociates floats
    and is held to ``1e-10`` by ``tests/test_superop.py`` instead).
    """
    kwargs = _study_kwargs(shared_decomposer)

    with pytest.MonkeyPatch.context() as patcher:
        patcher.setenv("REPRO_SIM_KERNEL", "reference")

        reference = run_instruction_set_study_reference(**kwargs)

        clear_experiment_caches()
        engine_serial_cold = run_study(**kwargs, workers=1)
        stats_after_cold = global_compilation_cache().stats()

        engine_parallel_warm = run_study(**kwargs, workers=4)
        stats_after_warm = global_compilation_cache().stats()

        clear_experiment_caches()
        engine_parallel_cold = run_study(**kwargs, workers=4)

        wrapper = run_instruction_set_study(
            kwargs["application"],
            kwargs["circuits"],
            kwargs["metric_name"],
            kwargs["metric"],
            kwargs["device_factory"],
            kwargs["instruction_sets"],
            decomposer=kwargs["decomposer"],
            options=kwargs["options"],
            error_scales=kwargs["error_scales"],
        )

    return {
        "reference": reference,
        "engine_serial_cold": engine_serial_cold,
        "engine_parallel_warm": engine_parallel_warm,
        "engine_parallel_cold": engine_parallel_cold,
        "wrapper": wrapper,
        "stats_after_cold": stats_after_cold,
        "stats_after_warm": stats_after_warm,
    }


class TestEngineDeterminism:
    def test_engine_matches_legacy_serial_runner(self, studies):
        assert _rows(studies["engine_serial_cold"]) == _rows(studies["reference"])

    def test_workers_do_not_change_results(self, studies):
        assert _rows(studies["engine_parallel_warm"]) == _rows(studies["engine_serial_cold"])
        assert _rows(studies["engine_parallel_cold"]) == _rows(studies["engine_serial_cold"])

    def test_cache_hits_match_cold_cache(self, studies):
        # The warm run after the cold run served every compile from cache...
        cold = studies["stats_after_cold"]
        warm = studies["stats_after_warm"]
        assert cold["misses"] > 0
        assert warm["hits"] >= cold["misses"]
        assert warm["misses"] == cold["misses"]
        # ...and still produced identical rows (asserted above); this pins
        # the cache's side-effect replay of calibration registrations.
        assert _rows(studies["engine_parallel_warm"]) == _rows(studies["engine_serial_cold"])

    def test_compat_wrapper_delegates_to_engine(self, studies):
        assert _rows(studies["wrapper"]) == _rows(studies["engine_serial_cold"])

    def test_per_set_bookkeeping_is_populated(self, studies):
        for _, metrics, counts, swaps, usage in _rows(studies["engine_serial_cold"]):
            assert len(metrics) == 2
            assert len(counts) == 2
            assert len(swaps) == 2
            assert usage
        # The scaled FullfSim variant sees worse hardware, so its metric
        # must not beat the unscaled variant by more than sampling noise.
        per_set = studies["engine_serial_cold"].per_set
        assert per_set["FullfSim-2x"].mean_metric <= per_set["FullfSim"].mean_metric + 0.1


class TestCalibrationFingerprint:
    def test_distinct_topologies_do_not_collide(self):
        # Same name ("synthetic-grid-9"? no: names differ by cols), same
        # seed and noise parameters, different coupling graphs: the
        # fingerprint must differ or the compilation cache could hand a
        # circuit routed for the wrong topology to the second device.
        square = synthetic_device(9, "grid", seed=3, name="dev")
        line_shaped = synthetic_device(9, "grid", grid_rows=1, seed=3, name="dev")
        assert square.calibration_fingerprint() != line_shaped.calibration_fingerprint()

    def test_registration_changes_fingerprint(self):
        device = synthetic_device(4, "line", seed=3)
        before = device.calibration_fingerprint()
        device.ensure_gate_types(["cz"])
        assert device.calibration_fingerprint() != before


class TestStudyPlan:
    def test_jobs_are_canonically_ordered(self):
        plan = StudyPlan(set_names=["A", "B"], num_circuits=2, error_scales={"B": 2.0})
        assert plan.jobs() == [
            ExperimentJob("A", 0, 1.0),
            ExperimentJob("A", 1, 1.0),
            ExperimentJob("B", 0, 2.0),
            ExperimentJob("B", 1, 2.0),
        ]
        assert len(plan) == 4

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
