"""Tests for NuOp template circuits and their analytic gradients."""

import numpy as np
import pytest

from repro.core.templates import (
    TemplateSpec,
    continuous_family_template,
    fixed_gate_template,
)
from repro.gates.standard import CZ
from repro.gates.unitary import hilbert_schmidt_fidelity, is_unitary, random_su4


class TestTemplateStructure:
    def test_parameter_counts(self):
        fixed = fixed_gate_template(3, CZ)
        assert fixed.num_single_qubit_parameters == 24
        assert fixed.num_two_qubit_parameters == 0
        assert fixed.num_parameters == 24

        fsim_template = continuous_family_template(2, "fsim")
        assert fsim_template.num_parameters == 18 + 4
        xy_template = continuous_family_template(2, "xy")
        assert xy_template.num_parameters == 18 + 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TemplateSpec(num_layers=-1)
        with pytest.raises(ValueError):
            TemplateSpec(num_layers=1, two_qubit_family="fixed", fixed_gate_matrix=None)
        with pytest.raises(ValueError):
            TemplateSpec(num_layers=1, two_qubit_family="exotic")

    def test_split_parameters_checks_length(self):
        template = fixed_gate_template(1, CZ)
        with pytest.raises(ValueError):
            template.split_parameters(np.zeros(5))

    def test_zero_layer_template_is_local(self, rng):
        template = TemplateSpec(num_layers=0)
        params = rng.uniform(-np.pi, np.pi, template.num_parameters)
        unitary = template.unitary(params)
        assert is_unitary(unitary)
        # A 0-layer template cannot express an entangling gate exactly.
        assert hilbert_schmidt_fidelity(unitary, CZ) < 0.999

    def test_template_unitary_is_unitary(self, rng):
        for template in (
            fixed_gate_template(2, CZ),
            continuous_family_template(2, "fsim"),
            continuous_family_template(1, "xy"),
        ):
            params = rng.uniform(-np.pi, np.pi, template.num_parameters)
            assert is_unitary(template.unitary(params))

    def test_identity_parameters_give_gate_product(self):
        template = fixed_gate_template(2, CZ)
        unitary = template.unitary(np.zeros(template.num_parameters))
        assert np.allclose(unitary, CZ @ CZ)

    def test_two_qubit_angles_reporting(self):
        template = continuous_family_template(2, "fsim")
        params = np.zeros(template.num_parameters)
        params[-4:] = [0.1, 0.2, 0.3, 0.4]
        angles = template.two_qubit_angles(template.split_parameters(params)[1])
        assert angles == [(0.1, 0.2), (0.3, 0.4)]
        fixed = fixed_gate_template(2, CZ)
        assert fixed.two_qubit_angles(np.zeros(0)) == [(), ()]


class TestGradients:
    @pytest.mark.parametrize(
        "template_factory",
        [
            lambda: fixed_gate_template(2, CZ),
            lambda: continuous_family_template(2, "fsim"),
            lambda: continuous_family_template(2, "xy"),
        ],
    )
    def test_analytic_gradient_matches_finite_differences(self, template_factory, rng):
        template = template_factory()
        target = random_su4(rng)
        params = rng.uniform(-np.pi, np.pi, template.num_parameters)
        value, gradient = template.objective_with_gradient(params, target)
        assert value == pytest.approx(
            1.0 - hilbert_schmidt_fidelity(template.unitary(params), target), abs=1e-10
        )
        epsilon = 1e-6
        for index in range(0, template.num_parameters, 5):
            shifted_up = params.copy()
            shifted_up[index] += epsilon
            shifted_down = params.copy()
            shifted_down[index] -= epsilon
            up, _ = template.objective_with_gradient(shifted_up, target)
            down, _ = template.objective_with_gradient(shifted_down, target)
            numeric = (up - down) / (2 * epsilon)
            assert gradient[index] == pytest.approx(numeric, abs=1e-5)

    def test_gradient_is_zero_at_exact_solution(self):
        # Template CZ with zero single-qubit angles realises CZ CZ = identity;
        # the gradient of the objective against the identity target is ~0 by symmetry.
        template = fixed_gate_template(2, CZ)
        value, gradient = template.objective_with_gradient(
            np.zeros(template.num_parameters), np.eye(4)
        )
        assert value == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(gradient, 0.0, atol=1e-9)
