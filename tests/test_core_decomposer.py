"""Tests for the NuOp decomposer (exact, approximate, continuous and cached modes)."""

import numpy as np
import pytest

from repro.circuits.gate import named_gate
from repro.core.decomposer import (
    EXACT_FIDELITY_THRESHOLD,
    NuOpDecomposer,
    decompose_local_unitary,
)
from repro.core.gate_types import google_gate_type
from repro.gates.kak import min_cz_count
from repro.gates.parametric import cphase, rzz
from repro.gates.standard import CZ, SWAP
from repro.gates.unitary import (
    allclose_up_to_global_phase,
    hilbert_schmidt_fidelity,
    random_su4,
    random_unitary,
)


CZ_GATE = google_gate_type("S3").gate
SYC_GATE = google_gate_type("S1").gate
ISWAP_GATE = google_gate_type("S4").gate
SWAP_GATE = google_gate_type("SWAP").gate


class TestExactDecomposition:
    def test_generic_su4_needs_three_cz_layers(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_exact(target, gate=CZ_GATE)
        assert decomposition.num_layers == 3
        assert decomposition.decomposition_fidelity >= EXACT_FIDELITY_THRESHOLD
        assert decomposition.verify() >= EXACT_FIDELITY_THRESHOLD

    def test_generic_su4_with_syc(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_exact(target, gate=SYC_GATE)
        assert decomposition.num_layers == 3
        assert decomposition.verify() >= EXACT_FIDELITY_THRESHOLD

    def test_qaoa_unitary_needs_two_cz_layers(self, shared_decomposer):
        decomposition = shared_decomposer.decompose_exact(rzz(0.4), gate=CZ_GATE)
        assert decomposition.num_layers == 2
        assert decomposition.verify() >= EXACT_FIDELITY_THRESHOLD

    def test_swap_needs_three_iswaps_and_one_native_swap(self, shared_decomposer):
        assert shared_decomposer.decompose_exact(SWAP, gate=ISWAP_GATE).num_layers == 3
        assert shared_decomposer.decompose_exact(SWAP, gate=SWAP_GATE).num_layers == 1

    def test_cz_class_target_needs_single_layer(self, shared_decomposer):
        decomposition = shared_decomposer.decompose_exact(CZ, gate=CZ_GATE)
        assert decomposition.num_layers == 1

    def test_local_target_needs_zero_layers(self, shared_decomposer, session_rng):
        local = np.kron(random_unitary(2, session_rng), random_unitary(2, session_rng))
        decomposition = shared_decomposer.decompose_exact(local, gate=CZ_GATE)
        assert decomposition.num_layers == 0
        assert decomposition.verify() >= EXACT_FIDELITY_THRESHOLD

    def test_exact_counts_match_analytic_cz_theory(self, shared_decomposer, session_rng):
        for target in (cphase(np.pi / 2), rzz(1.0), random_su4(session_rng)):
            expected = min_cz_count(target)
            decomposition = shared_decomposer.decompose_exact(target, gate=CZ_GATE)
            assert decomposition.num_layers == expected

    def test_operations_and_circuit_expansion(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_exact(target, gate=CZ_GATE)
        operations = decomposition.operations((5, 2))
        assert all(set(op.qubits) <= {5, 2} for op in operations)
        two_qubit_ops = [op for op in operations if op.is_two_qubit]
        assert len(two_qubit_ops) == decomposition.num_layers
        circuit = decomposition.to_circuit()
        assert allclose_up_to_global_phase(circuit.to_unitary(), target, atol=1e-5)

    def test_requires_exactly_one_of_gate_or_family(self, shared_decomposer):
        with pytest.raises(ValueError):
            shared_decomposer.fidelity_profile(CZ)
        with pytest.raises(ValueError):
            shared_decomposer.fidelity_profile(CZ, gate=CZ_GATE, family="fsim")


class TestApproximateDecomposition:
    def test_low_hardware_fidelity_prefers_fewer_layers(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        exact = shared_decomposer.decompose_exact(target, gate=CZ_GATE)
        approximate = shared_decomposer.decompose_approximate(
            target, gate=CZ_GATE, gate_fidelity=0.95
        )
        assert approximate.num_layers <= exact.num_layers
        assert approximate.overall_fidelity >= exact.decomposition_fidelity * 0.95**exact.num_layers - 1e-9

    def test_perfect_hardware_recovers_exact_solution(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        approximate = shared_decomposer.decompose_approximate(
            target, gate=CZ_GATE, gate_fidelity=1.0
        )
        assert approximate.decomposition_fidelity >= EXACT_FIDELITY_THRESHOLD

    def test_hardware_fidelity_recorded(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_approximate(
            target, gate=CZ_GATE, gate_fidelity=0.98
        )
        assert decomposition.hardware_fidelity == pytest.approx(
            0.98**decomposition.num_layers
        )
        assert decomposition.overall_fidelity == pytest.approx(
            decomposition.decomposition_fidelity * decomposition.hardware_fidelity
        )

    def test_threshold_variant_matches_approximate(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        a = shared_decomposer.decompose_for_threshold(target, gate=CZ_GATE, hardware_fidelity_target=0.95)
        b = shared_decomposer.decompose_approximate(target, gate=CZ_GATE, gate_fidelity=0.95)
        assert a.num_layers == b.num_layers


class TestContinuousFamilies:
    def test_full_fsim_uses_two_layers_for_su4(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_exact(target, family="fsim")
        assert decomposition.num_layers <= 2
        assert decomposition.verify() >= 0.999

    def test_full_fsim_handles_swap_with_one_layer(self, shared_decomposer):
        decomposition = shared_decomposer.decompose_exact(SWAP, family="fsim")
        assert decomposition.num_layers == 1

    def test_full_xy_expresses_zz_with_two_layers(self, shared_decomposer):
        decomposition = shared_decomposer.decompose_exact(rzz(0.8), family="xy")
        assert decomposition.num_layers <= 2
        assert decomposition.verify() >= 0.999

    def test_continuous_gates_carry_optimised_angles(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = shared_decomposer.decompose_exact(target, family="fsim")
        for gate in decomposition.hardware_gates:
            assert gate.name == "fsim"
            assert len(gate.params) == 2


class TestCachingAndBookkeeping:
    def test_profile_cache_hits(self, session_rng):
        decomposer = NuOpDecomposer(seed=3)
        target = random_su4(session_rng)
        first = decomposer.fidelity_profile(target, gate=CZ_GATE)
        second = decomposer.fidelity_profile(target, gate=CZ_GATE)
        assert first is second
        decomposer.clear_cache()
        third = decomposer.fidelity_profile(target, gate=CZ_GATE)
        assert third is not first

    def test_label_propagates(self, shared_decomposer):
        decomposition = shared_decomposer.decompose_exact(rzz(0.4), gate=CZ_GATE, label="S3")
        assert decomposition.gate_type_label == "S3"

    def test_decompose_local_unitary_fast_path(self, session_rng):
        a = random_unitary(2, session_rng)
        b = random_unitary(2, session_rng)
        factors = decompose_local_unitary(np.kron(a, b))
        assert factors is not None
        fa, fb = factors
        assert hilbert_schmidt_fidelity(np.kron(fa, fb), np.kron(a, b)) > 0.999999
        assert decompose_local_unitary(CZ) is None
