"""Tests for the density-matrix and trajectory simulators and sampling."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.gates.unitary import random_su4
from repro.simulators.density_matrix import DensityMatrixSimulator, apply_channel_to_rho
from repro.simulators.noise import depolarizing_channel
from repro.simulators.noise_model import NoiseModel
from repro.simulators.sampling import Counts, apply_readout_error, sample_counts
from repro.simulators.statevector import ideal_probabilities, simulate_statevector
from repro.simulators.trajectory import TrajectorySimulator
from repro.simulators.estimator import (
    circuit_duration,
    circuit_gate_fidelity,
    decoherence_factor,
    estimate_circuit_fidelity,
)


def bell_circuit() -> QuantumCircuit:
    return QuantumCircuit(2).h(0).cx(0, 1)


def noisy_model(num_qubits: int = 2, error: float = 0.05) -> NoiseModel:
    return NoiseModel.uniform(num_qubits, two_qubit_error=error, single_qubit_error=0.002)


class TestDensityMatrixSimulator:
    def test_noiseless_simulation_matches_statevector(self, rng):
        circuit = QuantumCircuit(3)
        circuit.h(0).unitary(random_su4(rng), [0, 1]).cz(1, 2)
        result = DensityMatrixSimulator().run(circuit)
        assert np.allclose(result.probabilities(), ideal_probabilities(circuit), atol=1e-9)
        assert result.purity() == pytest.approx(1.0)

    def test_noise_reduces_purity_and_fidelity(self):
        circuit = bell_circuit()
        result = DensityMatrixSimulator(noisy_model()).run(circuit)
        assert result.purity() < 0.999
        fidelity = result.fidelity_with_state(simulate_statevector(circuit))
        assert 0.5 < fidelity < 1.0

    def test_stronger_noise_gives_lower_fidelity(self):
        circuit = bell_circuit()
        weak = DensityMatrixSimulator(noisy_model(error=0.01)).run(circuit)
        strong = DensityMatrixSimulator(noisy_model(error=0.10)).run(circuit)
        ideal = simulate_statevector(circuit)
        assert strong.fidelity_with_state(ideal) < weak.fidelity_with_state(ideal)

    def test_physical_qubit_mapping_changes_noise_lookup(self):
        model = noisy_model(4, error=0.001)
        model.set_two_qubit_error_rate("cx", (2, 3), 0.2)
        circuit = bell_circuit()
        good = DensityMatrixSimulator(model).run(circuit, physical_qubits=[0, 1])
        bad = DensityMatrixSimulator(model).run(circuit, physical_qubits=[2, 3])
        ideal = simulate_statevector(circuit)
        assert bad.fidelity_with_state(ideal) < good.fidelity_with_state(ideal)

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1).x(0)
        result = DensityMatrixSimulator().run(
            circuit, initial_state=np.array([0, 1], dtype=complex)
        )
        assert result.probabilities()[0] == pytest.approx(1.0)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(QuantumCircuit(13))

    def test_apply_channel_preserves_trace(self, rng):
        rho = np.outer(*(2 * [np.array([0.6, 0.8j, 0, 0])]))
        rho = np.outer(np.array([0.6, 0.8j, 0, 0]), np.array([0.6, 0.8j, 0, 0]).conj())
        channel = depolarizing_channel(0.2, 1)
        updated = apply_channel_to_rho(rho, channel, [1], 2)
        assert np.trace(updated) == pytest.approx(np.trace(rho))


class TestTrajectorySimulator:
    def test_trajectory_matches_density_matrix(self):
        circuit = bell_circuit()
        model = noisy_model(error=0.08)
        dm_probs = DensityMatrixSimulator(model).run(circuit).probabilities()
        traj_probs = TrajectorySimulator(model, num_trajectories=400, seed=3).run(circuit)
        assert np.allclose(traj_probs, dm_probs, atol=0.05)

    def test_noiseless_trajectory_is_deterministic(self):
        circuit = bell_circuit()
        probs = TrajectorySimulator(None, num_trajectories=3, seed=1).run(circuit)
        assert np.allclose(probs, ideal_probabilities(circuit))

    def test_run_states_returns_normalised_states(self):
        circuit = bell_circuit()
        states = TrajectorySimulator(noisy_model(), num_trajectories=5, seed=2).run_states(circuit)
        assert len(states) == 5
        for state in states:
            assert np.linalg.norm(state) == pytest.approx(1.0)


class TestSampling:
    def test_sample_counts_total_and_distribution(self):
        probs = np.array([0.5, 0.0, 0.0, 0.5])
        counts = sample_counts(probs, 2000, rng=np.random.default_rng(0))
        assert counts.shots == 2000
        assert counts.probability(0) == pytest.approx(0.5, abs=0.06)
        assert counts.probability(1) == 0.0

    def test_counts_helpers(self):
        counts = Counts(num_qubits=2, counts={0: 30, 3: 70})
        assert counts.most_common(1) == [3]
        assert counts.to_bitstring_dict() == {"00": 30, "11": 70}
        assert counts.to_probability_vector()[3] == pytest.approx(0.7)
        assert counts[3] == 70
        assert set(iter(counts)) == {0, 3}

    def test_readout_error_mixes_distribution(self):
        probs = np.array([1.0, 0.0, 0.0, 0.0])
        flipped = apply_readout_error(probs, [0.1, 0.2])
        assert flipped[0] == pytest.approx(0.9 * 0.8)
        assert flipped[1] == pytest.approx(0.9 * 0.2)
        assert flipped[2] == pytest.approx(0.1 * 0.8)
        assert flipped[3] == pytest.approx(0.1 * 0.2)
        assert flipped.sum() == pytest.approx(1.0)

    def test_readout_error_length_validated(self):
        with pytest.raises(ValueError):
            apply_readout_error(np.ones(4) / 4, [0.1])

    def test_sampling_with_readout_error(self):
        probs = np.array([1.0, 0.0])
        counts = sample_counts(probs, 5000, rng=np.random.default_rng(1), readout_error=[0.2])
        assert counts.probability(1) == pytest.approx(0.2, abs=0.03)


class TestEstimator:
    def test_gate_fidelity_product(self):
        model = noisy_model(error=0.01)
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1)
        expected = (1 - 0.01) ** 2
        assert circuit_gate_fidelity(circuit, model) == pytest.approx(expected)

    def test_duration_accumulates_over_moments(self):
        model = noisy_model()
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        duration = circuit_duration(circuit, model)
        assert duration == pytest.approx(model.single_qubit_duration + model.two_qubit_duration)

    def test_decoherence_factor_below_one(self):
        model = noisy_model()
        circuit = bell_circuit()
        factor = decoherence_factor(circuit, model)
        assert 0.0 < factor < 1.0

    def test_estimate_combines_terms(self):
        model = noisy_model()
        circuit = bell_circuit()
        full = estimate_circuit_fidelity(circuit, model)
        gates_only = estimate_circuit_fidelity(circuit, model, include_decoherence=False)
        assert full <= gates_only <= 1.0
