"""Tests for noise-adaptive gate-type selection (the Figure 5 mechanism)."""

import numpy as np
import pytest

from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import (
    full_fsim_set,
    google_instruction_set,
    rigetti_instruction_set,
    single_gate_set,
)
from repro.core.noise_adaptive import best_gate_type_per_edge, decompose_with_instruction_set
from repro.gates.parametric import rzz
from repro.gates.standard import SWAP
from repro.gates.unitary import random_su4


class TestInstructionSetDecomposition:
    def test_single_type_set_uses_that_type(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = decompose_with_instruction_set(
            shared_decomposer, target, single_gate_set("S3"), edge_fidelities={"cz": 0.99}
        )
        assert decomposition.gate_type_label == "S3"
        assert all(gate.name in ("cz",) for gate in decomposition.hardware_gates)

    def test_chooses_higher_fidelity_type_when_counts_tie(self, shared_decomposer, session_rng):
        """With equal expressivity, the calibrated fidelity decides (Figure 5)."""
        target = random_su4(session_rng)
        instruction_set = rigetti_instruction_set("R1")  # CZ (S3) and XY(pi) (S4)
        keys = instruction_set.type_keys()
        favour_cz = decompose_with_instruction_set(
            shared_decomposer,
            target,
            instruction_set,
            edge_fidelities={keys[0]: 0.99, keys[1]: 0.90},
        )
        favour_xy = decompose_with_instruction_set(
            shared_decomposer,
            target,
            instruction_set,
            edge_fidelities={keys[0]: 0.90, keys[1]: 0.99},
        )
        assert favour_cz.gate_type_label == "S3"
        assert favour_xy.gate_type_label == "S4"

    def test_expressivity_wins_when_fidelities_equal(self, shared_decomposer):
        """SWAP-heavy workloads pick the native SWAP when it is in the set (G7)."""
        decomposition = decompose_with_instruction_set(
            shared_decomposer,
            SWAP,
            google_instruction_set("G7"),
            edge_fidelities={key: 0.99 for key in google_instruction_set("G7").type_keys()},
        )
        assert decomposition.gate_type_label == "SWAP"
        assert decomposition.num_layers == 1

    def test_overall_fidelity_maximised(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        instruction_set = google_instruction_set("G3")
        fidelities = {key: 0.97 for key in instruction_set.type_keys()}
        chosen = decompose_with_instruction_set(
            shared_decomposer, target, instruction_set, edge_fidelities=fidelities
        )
        # No individual type can achieve a strictly better F_d * F_h.
        for gate_type in instruction_set.gate_types:
            candidate = shared_decomposer.decompose_approximate(
                target, gate=gate_type.gate, gate_fidelity=0.97
            )
            assert chosen.overall_fidelity >= candidate.overall_fidelity - 1e-9

    def test_continuous_family_decomposition(self, shared_decomposer, session_rng):
        target = random_su4(session_rng)
        decomposition = decompose_with_instruction_set(
            shared_decomposer,
            target,
            full_fsim_set(),
            edge_fidelities={"*": 0.99},
        )
        assert decomposition.num_layers <= 2
        assert decomposition.hardware_fidelity <= 1.0

    def test_exact_mode(self, shared_decomposer):
        decomposition = decompose_with_instruction_set(
            shared_decomposer,
            rzz(0.4),
            single_gate_set("S3"),
            edge_fidelities={"cz": 0.95},
            approximate=False,
        )
        assert decomposition.decomposition_fidelity >= 0.999999
        assert decomposition.hardware_fidelity == pytest.approx(0.95**2)


class TestPerEdgeChoices:
    def test_best_gate_type_varies_with_edge_fidelities(self, shared_decomposer):
        """Reproduces the Figure 5 narrative on two Aspen-8 style edges."""
        instruction_set = rigetti_instruction_set("R1")
        cz_key, xy_key = instruction_set.type_keys()
        target = random_su4(np.random.default_rng(5))
        per_edge = {
            (2, 3): {cz_key: 0.94, xy_key: 0.70},
            (3, 4): {cz_key: 0.80, xy_key: 0.95},
        }
        choices = best_gate_type_per_edge(
            shared_decomposer, target, instruction_set, per_edge
        )
        assert choices[(2, 3)] == "S3"
        assert choices[(3, 4)] == "S4"
