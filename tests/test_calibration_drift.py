"""Tests for calibration drift and recalibration scheduling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.calibration.drift import (
    DriftModel,
    DriftParameters,
    drift_model_for_instruction_set,
)
from repro.calibration.model import CalibrationModel
from repro.calibration.scheduler import (
    NeverPolicy,
    PeriodicPolicy,
    ThresholdPolicy,
    compare_policies,
    hours_to_recalibrate,
    simulate_schedule,
    sustainable_gate_type_count,
)


def small_model(seed: int = 3, **kwargs) -> DriftModel:
    floors = {
        ((0, 1), "cz"): 0.006,
        ((0, 1), "fsim(0.785398,0.000000)"): 0.005,
        ((1, 2), "cz"): 0.008,
    }
    return DriftModel(floors, seed=seed, **kwargs)


class TestDriftParameters:
    def test_rejects_negative_volatility(self):
        with pytest.raises(ValueError):
            DriftParameters(volatility_per_hour=-0.1)

    def test_rejects_degradation_below_one(self):
        with pytest.raises(ValueError):
            DriftParameters(max_degradation_factor=0.5)


class TestDriftModel:
    def test_starts_at_floor(self):
        model = small_model()
        assert model.mean_degradation() == pytest.approx(1.0)
        assert model.error_rate((0, 1), "cz") == pytest.approx(0.006)

    def test_rejects_empty_and_bad_floors(self):
        with pytest.raises(ValueError):
            DriftModel({})
        with pytest.raises(ValueError):
            DriftModel({((0, 1), "cz"): 1.5})

    def test_drift_degrades_on_average(self):
        model = small_model()
        model.advance(72.0)
        assert model.mean_degradation() > 1.0
        assert model.elapsed_hours == pytest.approx(72.0)

    def test_degradation_capped(self):
        model = small_model(parameters=DriftParameters(drift_bias_per_hour=1.0))
        model.advance(200.0)
        assert model.worst_degradation() <= 10.0 + 1e-9

    def test_error_rates_stay_above_floor(self):
        model = small_model()
        model.advance(48.0)
        for key, gate in model.gates.items():
            assert gate.current_error_rate >= gate.floor_error_rate - 1e-12

    def test_calibrate_resets(self):
        model = small_model()
        model.advance(48.0)
        count = model.calibrate()
        assert count == 3
        assert model.mean_degradation() == pytest.approx(1.0)

    def test_partial_calibration(self):
        model = small_model(parameters=DriftParameters(drift_bias_per_hour=0.3, volatility_per_hour=0.0))
        model.advance(24.0)
        model.calibrate([((0, 1), "cz")])
        assert model.gates[((0, 1), "cz")].degradation_factor == pytest.approx(1.0)
        assert model.gates[((1, 2), "cz")].degradation_factor > 1.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            small_model().advance(-1.0)

    def test_deterministic_for_fixed_seed(self):
        a, b = small_model(seed=5), small_model(seed=5)
        a.advance(24.0)
        b.advance(24.0)
        assert a.snapshot() == b.snapshot()

    def test_stale_gates_detection(self):
        model = small_model(parameters=DriftParameters(drift_bias_per_hour=0.5, volatility_per_hour=0.0))
        model.advance(10.0)
        assert set(model.stale_gates(1.5)) == set(model.gates)
        assert model.stale_gates(1e6) == []

    @given(hours=st.floats(min_value=0.0, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_error_rates_always_valid_probabilities(self, hours):
        model = small_model(seed=11)
        model.advance(hours)
        for gate in model.gates.values():
            assert 0.0 < gate.current_error_rate < 1.0


class TestDriftFactory:
    def test_builds_expected_keys(self):
        model = drift_model_for_instruction_set(4, ["cz", "swap"], seed=2)
        assert len(model.gates) == 8

    def test_rejects_zero_edges(self):
        with pytest.raises(ValueError):
            drift_model_for_instruction_set(0, ["cz"])


class TestScheduler:
    def test_periodic_policy_triggers_on_period(self):
        policy = PeriodicPolicy(period_hours=24.0)
        model = small_model()
        assert policy.gates_to_calibrate(model, 12.0) == []
        assert set(policy.gates_to_calibrate(model, 24.0)) == set(model.gates)

    def test_threshold_policy_selects_only_stale_gates(self):
        model = small_model(parameters=DriftParameters(drift_bias_per_hour=0.5, volatility_per_hour=0.0))
        model.advance(5.0)
        policy = ThresholdPolicy(degradation_threshold=1.2)
        assert set(policy.gates_to_calibrate(model, 5.0)) == set(model.gates)

    def test_hours_to_recalibrate(self):
        calibration = CalibrationModel()
        keys = [((0, 1), "cz"), ((1, 2), "cz"), ((0, 1), "swap")]
        hours = hours_to_recalibrate(keys, calibration)
        assert hours == pytest.approx(calibration.base_hours + 2 * calibration.hours_per_gate_type)
        assert hours_to_recalibrate([], calibration) == 0.0

    def test_simulation_periodic_vs_never(self):
        results = compare_policies(
            lambda: small_model(seed=9),
            [PeriodicPolicy(period_hours=24.0), NeverPolicy()],
            horizon_hours=96.0,
        )
        periodic, never = results["periodic"], results["never"]
        assert periodic.mean_error_rate <= never.mean_error_rate + 1e-12
        assert periodic.calibration_hours > 0.0
        assert never.calibration_hours == 0.0
        assert never.num_recalibration_passes == 0
        assert 0.0 <= periodic.calibration_duty_cycle <= 1.0

    def test_threshold_policy_recalibrates_fewer_gates_than_periodic(self):
        results = compare_policies(
            lambda: small_model(seed=9),
            [PeriodicPolicy(period_hours=12.0), ThresholdPolicy(degradation_threshold=3.0)],
            horizon_hours=96.0,
        )
        assert (
            results["threshold"].gates_recalibrated
            <= results["periodic"].gates_recalibrated
        )

    def test_schedule_result_row(self):
        result = simulate_schedule(small_model(), NeverPolicy(), horizon_hours=24.0)
        row = result.as_row()
        assert row["policy"] == "never"
        assert row["passes"] == 0
        assert len(result.error_rate_timeline) == 6

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            simulate_schedule(small_model(), NeverPolicy(), horizon_hours=0.0)


class TestSustainableGateTypes:
    def test_four_hour_budget_supports_one_type(self):
        # 2h base + 2h per type: a 4-hour daily budget sustains one type,
        # matching the Google schedule quoted in the paper.
        assert sustainable_gate_type_count(daily_calibration_budget_hours=4.0) == 1

    def test_larger_budget_supports_more_types(self):
        assert sustainable_gate_type_count(daily_calibration_budget_hours=18.0) == 8

    def test_infeasible_budget(self):
        assert sustainable_gate_type_count(daily_calibration_budget_hours=1.0) == 0

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            sustainable_gate_type_count(daily_calibration_budget_hours=0.0)
