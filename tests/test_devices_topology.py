"""Tests for device topologies."""

import networkx as nx
import pytest

from repro.devices.topology import (
    Topology,
    grid_topology,
    line_topology,
    octagon_chain_topology,
    ring_topology,
)


class TestTopologyConstruction:
    def test_basic_properties(self):
        topology = Topology(4, [(0, 1), (1, 2), (2, 3)], name="path")
        assert topology.num_qubits == 4
        assert topology.edges == [(0, 1), (1, 2), (2, 3)]
        assert topology.degree(1) == 2
        assert topology.neighbors(1) == [0, 2]

    def test_rejects_self_loops_and_out_of_range(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 0)])
        with pytest.raises(ValueError):
            Topology(2, [(0, 5)])

    def test_line_ring_grid_counts(self):
        assert len(line_topology(5).edges) == 4
        assert len(ring_topology(5).edges) == 5
        grid = grid_topology(3, 4)
        assert grid.num_qubits == 12
        assert len(grid.edges) == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_grid_connectivity_degree_bounds(self):
        grid = grid_topology(6, 9)
        assert grid.num_qubits == 54
        assert max(grid.degree(q) for q in range(54)) == 4
        assert nx.is_connected(grid.graph)


class TestDistancesAndPaths:
    def test_distance_and_swap_distance(self):
        line = line_topology(5)
        assert line.distance(0, 4) == 4
        assert line.swap_distance(0, 4) == 3
        assert line.swap_distance(0, 1) == 0
        assert line.are_connected(0, 1)
        assert not line.are_connected(0, 2)

    def test_shortest_path_endpoints(self):
        ring = ring_topology(6)
        path = ring.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4

    def test_connected_subset_check(self):
        line = line_topology(5)
        assert line.is_connected_subset([1, 2, 3])
        assert not line.is_connected_subset([0, 2])


class TestSubgraphEnumeration:
    def test_connected_subgraphs_size_and_connectivity(self):
        grid = grid_topology(3, 3)
        subsets = grid.connected_subgraphs(3, limit=50)
        assert subsets
        assert len(subsets) <= 50
        for subset in subsets:
            assert len(subset) == 3
            assert grid.is_connected_subset(subset)

    def test_subgraph_edges(self):
        line = line_topology(4)
        assert line.subgraph_edges([0, 1, 2]) == [(0, 1), (1, 2)]


class TestOctagonChain:
    def test_aspen_like_structure(self):
        topology = octagon_chain_topology(4, 8)
        assert topology.num_qubits == 32
        # Each ring contributes 8 edges, plus 2 inter-ring couplers per junction.
        assert len(topology.edges) == 4 * 8 + 3 * 2
        assert nx.is_connected(topology.graph)

    def test_missing_qubits_are_removed(self):
        topology = octagon_chain_topology(4, 8, missing_qubits=(17, 27))
        assert topology.num_qubits == 30
        assert 17 not in topology.graph.nodes
        assert all(17 not in edge and 27 not in edge for edge in topology.edges)

    def test_first_ring_is_a_cycle(self):
        topology = octagon_chain_topology(4, 8)
        for offset in range(8):
            assert topology.are_connected(offset, (offset + 1) % 8)
