"""Channel checkers: broken channels are *detected*, real lowerings pass.

The detection half matters most -- a checker that only ever sees valid
channels proves nothing.  Hand-built non-trace-preserving Kraus sets,
a non-completely-positive superoperator (the transpose map: TP, yet its
Choi matrix has a -1 eigenvalue), and a non-unitary gate smuggled into a
lowered program must each produce findings, with tolerance boundaries
exercised on both sides.  The sweep half then asserts the production
contract: every built-in device x Table II instruction set x error
scale lowers to CPTP Kraus programs and CPTP fused superoperators.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.analysis.channel_checks import (
    check_kraus_operators,
    check_noise_program,
    check_superop_program,
    check_superoperator_cptp,
    check_unitary,
    verify_device_set_cptp,
)
from repro.applications.ghz import ghz_circuit
from repro.core.decomposer import NuOpDecomposer
from repro.core.instruction_sets import google_catalogue, rigetti_catalogue
from repro.core.pipeline import compile_circuit
from repro.devices.aspen8 import aspen8_device
from repro.devices.sycamore import sycamore_device
from repro.simulators.noise_program import noise_program_for
from repro.simulators.superop import superop_program_for


@pytest.fixture(scope="module")
def decomposer():
    return NuOpDecomposer()


class TestKrausDetection:
    def test_valid_channel_is_clean(self):
        p = 0.1
        operators = [
            np.sqrt(1 - p) * np.eye(2),
            np.sqrt(p) * np.array([[0.0, 1.0], [1.0, 0.0]]),
        ]
        assert check_kraus_operators(operators) == []

    def test_non_trace_preserving_detected(self):
        # sum K^†K = (1 + 1e-6) I: off by 1e-6 exactly.
        operators = [np.sqrt(1 + 1e-6) * np.eye(2)]
        findings = check_kraus_operators(operators, atol=1e-8)
        assert findings and "not trace preserving" in findings[0].message

    def test_tolerance_boundary(self):
        # The same 1e-6 deviation passes a looser tolerance: the atol
        # knob genuinely moves the bar rather than being cosmetic.
        operators = [np.sqrt(1 + 1e-6) * np.eye(2)]
        assert check_kraus_operators(operators, atol=1e-4) == []
        assert check_kraus_operators(operators, atol=1e-8) != []

    def test_empty_channel_detected(self):
        findings = check_kraus_operators([])
        assert findings and "no Kraus operators" in findings[0].message

    def test_mismatched_shapes_detected(self):
        findings = check_kraus_operators([np.eye(2), np.eye(4)])
        assert findings and "shape" in findings[0].message

    def test_where_label_propagates(self):
        findings = check_kraus_operators(
            [np.sqrt(2.0) * np.eye(2)], where="sycamore/S1"
        )
        assert findings[0].where == "sycamore/S1"


class TestSuperoperatorDetection:
    def test_unitary_conjugation_is_clean(self):
        hadamard = np.array([[1.0, 1.0], [1.0, -1.0]]) / np.sqrt(2.0)
        superop = np.kron(hadamard, hadamard.conj())
        assert check_superoperator_cptp(superop) == []

    def test_transpose_map_not_completely_positive(self):
        """The transpose map is TP but not CP (Choi eigenvalue -1)."""
        transpose = np.zeros((4, 4))
        for a in range(2):
            for b in range(2):
                # vec(rho^T)[a, b] = vec(rho)[b, a] under row-major vec.
                transpose[2 * a + b, 2 * b + a] = 1.0
        findings = check_superoperator_cptp(transpose)
        assert len(findings) == 1
        assert "not completely positive" in findings[0].message

    def test_trace_scaling_not_trace_preserving(self):
        superop = 1.5 * np.eye(4)
        findings = check_superoperator_cptp(superop)
        assert [f for f in findings if "not trace preserving" in f.message]


class TestUnitaryDetection:
    def test_valid(self):
        assert check_unitary(np.eye(2)) == []

    def test_non_unitary_detected(self):
        findings = check_unitary(np.array([[1.0, 0.0], [0.0, 0.5]]))
        assert findings and "not unitary" in findings[0].message

    def test_non_square_detected(self):
        findings = check_unitary(np.ones((2, 3)))
        assert findings and "non-square" in findings[0].message


class TestProgramDetection:
    def _lowered_program(self, decomposer):
        device = sycamore_device()
        s1 = google_catalogue()["S1"]
        compiled = compile_circuit(
            ghz_circuit(2), device, s1, decomposer=decomposer
        )
        return noise_program_for(compiled, device, error_scale=1.0)

    def test_real_lowering_is_clean(self, decomposer):
        program = self._lowered_program(decomposer)
        assert check_noise_program(program) == []
        assert check_superop_program(superop_program_for(program)) == []

    def test_non_unitary_gate_detected(self, decomposer):
        program = self._lowered_program(decomposer)
        target = program.moments[0].operations[0]
        broken_op = dataclasses.replace(
            target, matrix=np.asarray(target.matrix) * 1.001
        )
        broken_moment = dataclasses.replace(
            program.moments[0],
            operations=(broken_op, *program.moments[0].operations[1:]),
        )
        broken = dataclasses.replace(
            program, moments=(broken_moment, *program.moments[1:])
        )
        findings = check_noise_program(broken, where="probe")
        assert [f for f in findings if "not unitary" in f.message]
        assert all(f.where.startswith("probe: ") for f in findings)

    def test_non_tp_channel_detected(self, decomposer):
        program = self._lowered_program(decomposer)
        moment = next(
            m for m in program.moments
            for op in m.operations if op.channels
        )
        op = next(o for o in moment.operations if o.channels)
        channel, qubits = op.channels[0]
        # KrausChannel.__post_init__ enforces TP, so corrupt a copy
        # behind the frozen dataclass's back -- exactly the kind of
        # artefact corruption the checker exists to catch.
        bad_channel = dataclasses.replace(channel)
        object.__setattr__(
            bad_channel,
            "operators",
            tuple(op_k * 1.01 for op_k in channel.operators),
        )
        broken_op = dataclasses.replace(op, channels=((bad_channel, qubits),))
        broken_moment = dataclasses.replace(
            moment,
            operations=tuple(
                broken_op if o is op else o for o in moment.operations
            ),
        )
        broken = dataclasses.replace(
            program,
            moments=tuple(
                broken_moment if m is moment else m for m in program.moments
            ),
        )
        findings = check_noise_program(broken)
        assert [f for f in findings if "not trace preserving" in f.message]

    def test_negative_duration_detected(self, decomposer):
        program = self._lowered_program(decomposer)
        broken_moment = dataclasses.replace(program.moments[0], duration=-1.0)
        broken = dataclasses.replace(
            program, moments=(broken_moment, *program.moments[1:])
        )
        findings = check_noise_program(broken)
        assert [f for f in findings if "negative duration" in f.message]

    def test_wrong_group_shape_detected(self, decomposer):
        program = self._lowered_program(decomposer)
        superop = superop_program_for(program)
        group = superop.groups[0]
        # Lie about the support: a k-qubit group must carry a 4^k map.
        wrong = (
            group.qubits[:1]
            if len(group.qubits) > 1
            else (group.qubits[0], group.qubits[0])
        )
        broken_group = dataclasses.replace(group, qubits=wrong)
        broken = dataclasses.replace(
            superop, groups=(broken_group, *superop.groups[1:])
        )
        findings = check_superop_program(broken)
        assert [f for f in findings if "does not match" in f.message]


def _sweep_cases():
    cases = []
    for device_name, catalogue in (
        ("sycamore", google_catalogue()),
        ("aspen-8", rigetti_catalogue()),
    ):
        for set_name in catalogue:
            cases.append((device_name, set_name))
    return cases


class TestDeviceSetSweep:
    """Every built-in device x Table II set x error scale lowers CPTP."""

    @pytest.mark.parametrize("device_name,set_name", _sweep_cases())
    def test_sweep(self, device_name, set_name, decomposer):
        if device_name == "sycamore":
            device, catalogue = sycamore_device(), google_catalogue()
        else:
            device, catalogue = aspen8_device(), rigetti_catalogue()
        findings = verify_device_set_cptp(
            device,
            catalogue[set_name],
            error_scales=(1.0, 2.0, 3.0),
            decomposer=decomposer,
        )
        assert findings == []
