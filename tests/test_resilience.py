"""Deterministic fault injection and the resilience layer.

The contracts under test (see ``docs/resilience.md``):

* **Plan determinism** -- a fault plan is a seeded, replayable schedule:
  the same plan text injects the same fault sequence every time, and
  invalid entries warn-and-drop instead of raising or silently no-oping.
* **Inert by default** -- with no plan configured, every fault point is
  a dictionary miss; nothing raises, no RNG state is created.
* **Retry determinism** -- backoff delays derive from sha256 of the plan
  seed, never the wall clock, and exhaustion re-raises the *last
  underlying error* (no wrapper type).
* **Chaos bit-identity** -- the acceptance bar: a study executed under
  an aggressive fault plan produces rows bit-identical to the fault-free
  run, for the engine and for the serve daemon's ``study`` record.
* **Graceful degradation** -- disk-tier faults degrade to misses with
  consistent counters; failed in-flight keys back off; a draining
  service rejects new work with 503 while flushing what it accepted.
"""

from __future__ import annotations

import errno
import pickle
import socket
import threading
import time
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.caching.disk import DiskCompilationCache
from repro.config import duration_env
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.resilience import (
    FAULT_PLAN_ENV_VAR,
    InjectedFault,
    InjectedWorkerCrash,
    ResilienceCounters,
    RetryPolicy,
    call_with_retry,
    configure_fault_plan,
    consult_fault,
    fault_stats,
    maybe_raise_fault,
    maybe_raise_io_fault,
    reset_fault_plan_configuration,
    reset_retry_stats,
    retry_stats,
)
from repro.service.client import ServiceError, submit_study
from repro.service.dedup import InFlightTable
from repro.service.protocol import StudySpec, encode_record
from repro.service.server import ServiceDraining, StudyService, make_http_server
from repro.simulators.backend import reset_backend_invocation_counts


@pytest.fixture(autouse=True)
def _clean_resilience(monkeypatch):
    """Fault plans and retry counters are process-global: never leak them."""
    monkeypatch.delenv(FAULT_PLAN_ENV_VAR, raising=False)
    reset_fault_plan_configuration()
    reset_retry_stats()
    yield
    reset_fault_plan_configuration()
    reset_retry_stats()


@pytest.fixture()
def cold_engine():
    clear_experiment_caches()
    reset_backend_invocation_counts()
    yield
    clear_experiment_caches()


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_inert_without_a_plan(self):
        assert consult_fault("worker.task") is None
        maybe_raise_fault("worker.task")  # must not raise
        maybe_raise_io_fault("disk.read")
        assert fault_stats() == {
            "plan": None,
            "seed": 0,
            "consultations": {},
            "injected": {},
        }

    def test_at_rule_fires_exactly_once_on_the_nth_consultation(self):
        configure_fault_plan("worker.task:fail@2")
        draws = [consult_fault("worker.task") for _ in range(4)]
        assert draws == [None, "fail", None, None]
        stats = fault_stats()
        assert stats["consultations"] == {"worker.task": 4}
        assert stats["injected"] == {"worker.task": {"fail": 1}}

    def test_unruled_points_are_not_even_counted(self):
        configure_fault_plan("worker.task:fail@1")
        assert consult_fault("disk.read") is None
        assert fault_stats()["consultations"] == {}

    def test_first_matching_rule_wins(self):
        configure_fault_plan("worker.task:fail@1;worker.task:crash@1")
        assert consult_fault("worker.task") == "fail"

    def test_probability_rule_replays_the_same_sequence(self):
        plan_text = "disk.write:enospc%0.5;seed=7"
        configure_fault_plan(plan_text)
        first = [consult_fault("disk.write") for _ in range(24)]
        configure_fault_plan(plan_text)  # fresh counters, fresh RNG streams
        second = [consult_fault("disk.write") for _ in range(24)]
        assert first == second
        assert "enospc" in first  # p=0.5 over 24 draws: the rule does fire
        assert None in first  # ...and does not fire every time

    def test_seed_changes_the_probabilistic_sequence(self):
        sequences = {}
        for seed in (1, 2, 3, 4):
            configure_fault_plan(f"disk.write:enospc%0.5;seed={seed}")
            sequences[seed] = tuple(consult_fault("disk.write") for _ in range(24))
        assert len(set(sequences.values())) > 1

    @pytest.mark.parametrize(
        "entry",
        [
            "bogus.point:fail@1",  # unknown fault point
            "worker.task:fail@0",  # @N needs N >= 1
            "worker.task:fail%1.5",  # %P needs 0 < P < 1
            "worker.task:fail%zero",
            "worker.task",  # no operator at all
            "seed=lots",
        ],
    )
    def test_invalid_entries_warn_and_drop(self, entry):
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            configure_fault_plan(entry)
        assert consult_fault("worker.task") is None

    def test_invalid_entry_does_not_poison_valid_ones(self):
        with pytest.warns(RuntimeWarning, match="ignoring invalid"):
            configure_fault_plan("bogus.point:fail@1;worker.task:fail@1;seed=9")
        assert consult_fault("worker.task") == "fail"

    def test_env_var_activates_and_explicit_configuration_wins(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "worker.task:fail@1")
        reset_fault_plan_configuration()
        assert consult_fault("worker.task") == "fail"
        configure_fault_plan(None)  # explicit disable beats the environment
        assert consult_fault("worker.task") is None
        reset_fault_plan_configuration()  # back to the environment
        assert fault_stats()["plan"] == "worker.task:fail@1"

    def test_crash_kind_raises_a_broken_executor(self):
        configure_fault_plan("worker.task:crash@1")
        with pytest.raises(InjectedWorkerCrash) as excinfo:
            maybe_raise_fault("worker.task")
        assert isinstance(excinfo.value, BrokenExecutor)

    def test_other_kinds_raise_injected_fault(self):
        configure_fault_plan("backend.run:fail@1")
        with pytest.raises(InjectedFault) as excinfo:
            maybe_raise_fault("backend.run")
        assert excinfo.value.point == "backend.run"
        assert excinfo.value.kind == "fail"

    @pytest.mark.parametrize(
        "kind, code",
        [("enospc", errno.ENOSPC), ("eacces", errno.EACCES), ("eio", errno.EIO)],
    )
    def test_io_kinds_raise_oserror_with_matching_errno(self, kind, code):
        configure_fault_plan(f"disk.write:{kind}@1")
        with pytest.raises(OSError) as excinfo:
            maybe_raise_io_fault("disk.write")
        assert excinfo.value.errno == code

    def test_truncate_kind_raises_eoferror(self):
        configure_fault_plan("disk.read:truncate@1")
        with pytest.raises(EOFError):
            maybe_raise_io_fault("disk.read")

    def test_injected_exceptions_pickle_round_trip(self):
        # A fault raised inside a pool worker crosses the process
        # boundary as a pickle.  An exception that cannot rebuild from
        # its reduce tuple breaks the *parent's* result unpickling,
        # which ProcessPoolExecutor misreports as "a child process
        # terminated abruptly" and marks the whole pool broken.
        fault = pickle.loads(pickle.dumps(InjectedFault("backend.run", "fail")))
        assert (fault.point, fault.kind) == ("backend.run", "fail")
        assert str(fault) == str(InjectedFault("backend.run", "fail"))
        crash = pickle.loads(pickle.dumps(InjectedWorkerCrash("worker.task")))
        assert crash.point == "worker.task"
        assert str(crash) == str(InjectedWorkerCrash("worker.task"))


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def _flaky(self, failures, error=None):
        """A callable failing ``failures`` times, then returning 42."""
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            if state["calls"] <= failures:
                raise error or OSError(errno.EIO, "transient")
            return 42

        return fn, state

    def test_recovers_with_deterministic_backoff(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.025, seed=11)
        fn, state = self._flaky(2)
        counters = ResilienceCounters()
        slept = []
        with pytest.warns(RuntimeWarning, match="resilience: retrying"):
            result = call_with_retry(
                fn, policy, describe="unit", counters=counters, sleep=slept.append
            )
        assert result == 42 and state["calls"] == 3
        assert slept == [
            policy.backoff_delay(1, token="unit"),
            policy.backoff_delay(2, token="unit"),
        ]
        assert counters.snapshot() == {"attempts": 3, "retries": 2, "recoveries": 1}
        assert retry_stats()["recoveries"] == 1

    def test_backoff_is_jittered_exponential_and_seed_stable(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=0.3, seed=4)
        for attempt, raw in ((1, 0.1), (2, 0.2), (3, 0.3), (4, 0.3)):
            delay = policy.backoff_delay(attempt, token="t")
            assert 0.5 * raw <= delay <= raw
            assert delay == policy.backoff_delay(attempt, token="t")  # replayable
        assert policy.backoff_delay(1, token="t") != RetryPolicy(
            max_attempts=5, base_delay=0.1, max_delay=0.3, seed=5
        ).backoff_delay(1, token="t")

    def test_exhaustion_reraises_the_last_underlying_error(self):
        policy = RetryPolicy(max_attempts=3, seed=0)
        fn, state = self._flaky(99, error=OSError(errno.EIO, "still broken"))
        with pytest.warns(RuntimeWarning, match="retry budget of 3 exhausted"):
            with pytest.raises(OSError, match="still broken"):
                call_with_retry(fn, policy, sleep=lambda _: None)
        assert state["calls"] == 3
        assert retry_stats()["exhausted"] == 1

    def test_deterministic_errors_are_not_retried(self):
        fn, state = self._flaky(99, error=ValueError("spec typo"))
        with pytest.raises(ValueError):
            call_with_retry(fn, RetryPolicy(max_attempts=3), sleep=lambda _: None)
        assert state["calls"] == 1
        assert retry_stats()["retries"] == 0

    def test_deadline_stops_retrying_with_budget_left(self):
        policy = RetryPolicy(max_attempts=10, deadline=0.0)
        fn, state = self._flaky(99)
        with pytest.warns(RuntimeWarning, match="deadline"):
            with pytest.raises(OSError):
                call_with_retry(fn, policy, sleep=lambda _: None)
        assert state["calls"] == 1

    def test_from_env_reads_knobs_and_plan_seed(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "5")
        monkeypatch.setenv("REPRO_RETRY_BASE_MS", "100")
        monkeypatch.setenv("REPRO_RETRY_MAX_MS", "2000")
        configure_fault_plan("worker.task:fail@1;seed=42")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 5
        assert policy.base_delay == pytest.approx(0.1)
        assert policy.max_delay == pytest.approx(2.0)
        assert policy.deadline is None
        assert policy.seed == 42

    def test_duration_env_helper(self, monkeypatch):
        assert duration_env("REPRO_RETRY_DEADLINE_MS", None) is None
        assert duration_env("REPRO_RETRY_BASE_MS", 25) == pytest.approx(0.025)
        monkeypatch.setenv("REPRO_RETRY_BASE_MS", "250")
        assert duration_env("REPRO_RETRY_BASE_MS", 25) == pytest.approx(0.25)
        monkeypatch.setenv("REPRO_RETRY_BASE_MS", "soon")
        with pytest.warns(RuntimeWarning):
            assert duration_env("REPRO_RETRY_BASE_MS", 25) == pytest.approx(0.025)


# ---------------------------------------------------------------------------
# Disk-tier fault paths (all three namespaces)
# ---------------------------------------------------------------------------


class TestDiskFaultPaths:
    """Injected IO faults degrade every namespace to a miss, never a crash.

    Each namespace keeps its counters consistent across the fault:
    hits + misses always equals the number of lookups, and a dropped
    write is simply not counted as one.
    """

    def _put_get(self, disk, family):
        key = ("resilience-test", family)
        value = np.arange(4, dtype=float)
        if family == "sim":
            return (
                lambda: disk.put_simulation(key, value),
                lambda: disk.get_simulation(key),
            )
        if family == "decomp":
            return (
                lambda: disk.put_decomposition_table(key, {"cells": [1, 2]}),
                lambda: disk.get_decomposition_table(key),
            )
        return (
            lambda: disk.put_blob("autotune", key, {"verdict": "default"}),
            lambda: disk.get_blob("autotune", key),
        )

    def _counters(self, disk, family):
        stats = disk.stats()
        prefix = {"compile": "", "sim": "sim_", "decomp": "decomp_"}[family]
        return {
            "hits": stats[f"{prefix}hits"],
            "misses": stats[f"{prefix}misses"],
            "writes": stats[f"{prefix}writes"],
        }

    @pytest.mark.parametrize("family", ["compile", "sim", "decomp"])
    @pytest.mark.parametrize("kind", ["enospc", "eacces", "eio"])
    def test_write_fault_drops_the_write_and_degrades_to_a_miss(
        self, tmp_path, family, kind
    ):
        disk = DiskCompilationCache(tmp_path)
        put, get = self._put_get(disk, family)
        configure_fault_plan(f"disk.write:{kind}@1")
        assert put() is False  # degraded, not raised
        counted = self._counters(disk, family)
        assert counted["writes"] == 0
        assert get() is None  # nothing landed on disk
        configure_fault_plan(None)
        assert put() is True  # the tier recovers immediately
        assert get() is not None
        counted = self._counters(disk, family)
        assert counted["writes"] == 1
        assert counted["hits"] + counted["misses"] == 2

    @pytest.mark.parametrize("family", ["compile", "sim", "decomp"])
    @pytest.mark.parametrize("kind", ["truncate", "eio"])
    def test_read_fault_is_a_recorded_miss_with_consistent_counters(
        self, tmp_path, family, kind
    ):
        disk = DiskCompilationCache(tmp_path)
        put, get = self._put_get(disk, family)
        assert put() is True
        assert get() is not None  # warm: a genuine hit first
        configure_fault_plan(f"disk.read:{kind}@1")
        assert get() is None  # injected fault: same branch as corruption
        configure_fault_plan(None)
        # The unreadable entry was discarded (exactly what happens to a
        # genuinely corrupt file), so the next lookup is an honest miss.
        assert get() is None
        counted = self._counters(disk, family)
        assert counted["hits"] == 1
        assert counted["misses"] == 2
        assert counted["hits"] + counted["misses"] == 3
        stats = disk.stats()  # the footprint walk still works post-fault
        assert stats["schema_version"] >= 1


# ---------------------------------------------------------------------------
# Engine chaos: bit-identical studies under an aggressive fault plan
# ---------------------------------------------------------------------------

CHAOS_PLAN = "worker.task:fail@2;backend.run:fail@1;disk.write:enospc%0.3;seed=3"


def _chaos_kwargs(shared_decomposer):
    """A 2-circuit x 2-set study, small enough for per-test cold runs."""
    circuits = [qv_circuit(3, rng=np.random.default_rng(index)) for index in range(2)]
    return dict(
        application="qv",
        circuits=circuits,
        metric_name="HOP",
        metric=heavy_output_probability,
        device_factory=lambda: synthetic_device(5, "line", seed=13),
        instruction_sets={
            "S1": single_gate_set("S1", vendor="google"),
            "G3": google_instruction_set("G3"),
        },
        options=SimulationOptions(shots=600, seed=5),
        decomposer=shared_decomposer,
    )


def _rows(study):
    return [
        (
            name,
            result.metric_values,
            result.two_qubit_counts,
            result.swap_counts,
            sorted(result.gate_type_usage.items()),
        )
        for name, result in study.per_set.items()
    ]


class TestEngineChaos:
    def test_chaos_run_is_bit_identical_to_fault_free(
        self, cold_engine, tmp_path, shared_decomposer
    ):
        kwargs = _chaos_kwargs(shared_decomposer)
        baseline = run_study(**kwargs, workers=1)
        assert baseline.executor_kind == "inline"
        assert baseline.resilience.get("retries", 0) == 0

        clear_experiment_caches()
        reset_backend_invocation_counts()
        reset_retry_stats()
        configure_fault_plan(CHAOS_PLAN)
        with pytest.warns(RuntimeWarning, match="resilience:"):
            chaos = run_study(
                **kwargs, workers=1, cache_dir=str(tmp_path / "chaos-cache")
            )

        assert _rows(chaos) == _rows(baseline)
        assert chaos.resilience["retries"] >= 1
        assert chaos.resilience["recoveries"] >= 1
        stats = fault_stats()
        assert stats["injected"]  # the plan actually fired
        assert stats["seed"] == 3

    def test_same_plan_replays_the_same_fault_sequence(
        self, cold_engine, tmp_path, shared_decomposer
    ):
        kwargs = _chaos_kwargs(shared_decomposer)
        observed = []
        for run in range(2):
            clear_experiment_caches()
            reset_backend_invocation_counts()
            configure_fault_plan(CHAOS_PLAN)
            with pytest.warns(RuntimeWarning, match="resilience:"):
                run_study(
                    **kwargs, workers=1, cache_dir=str(tmp_path / f"replay-{run}")
                )
            observed.append(fault_stats())
        assert observed[0] == observed[1]

    def test_worker_crash_degrades_the_pool_and_still_completes(
        self, cold_engine, monkeypatch, shared_decomposer
    ):
        kwargs = _chaos_kwargs(shared_decomposer)
        baseline = run_study(**kwargs, workers=1)

        clear_experiment_caches()
        reset_backend_invocation_counts()
        reset_retry_stats()
        # Through the environment, not configure_fault_plan(): forked pool
        # workers inherit the env var and arm their own plan, so the crash
        # fires inside a real worker process.
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, "worker.task:crash@1;seed=1")
        reset_fault_plan_configuration()
        with pytest.warns(RuntimeWarning, match="resilience:|falling back"):
            chaos = run_study(**kwargs, workers=2)

        assert _rows(chaos) == _rows(baseline)
        assert chaos.executor_kind == "process"
        assert retry_stats()["executor_fallbacks"] >= 1

    def test_retry_exhaustion_propagates_the_underlying_error(
        self, cold_engine, shared_decomposer
    ):
        kwargs = _chaos_kwargs(shared_decomposer)
        # Fail every backend invocation forever: the budget must exhaust
        # and surface the injected error, never hang or mask it.
        configure_fault_plan("backend.run:fail%0.999;seed=1")
        policy = RetryPolicy(max_attempts=2, base_delay=0.001, seed=1)
        with pytest.warns(RuntimeWarning, match="retry budget"):
            with pytest.raises(InjectedFault):
                run_study(**kwargs, workers=1, retry_policy=policy)


# ---------------------------------------------------------------------------
# In-flight table: failed-key backoff and the inflight.wait fault point
# ---------------------------------------------------------------------------


class TestInFlightBackoff:
    def test_failed_key_cools_down_then_clears_on_success(self):
        table = InFlightTable(failure_backoff=0.05)

        def boom():
            raise OSError(errno.EIO, "flaky dependency")

        with pytest.raises(OSError):
            table.coalesce("k", boom)
        assert table.stats()["failed_keys"] == 1

        started = time.monotonic()
        result, owner = table.coalesce("k", lambda: "ok")
        elapsed = time.monotonic() - started
        assert (result, owner) == ("ok", True)
        assert elapsed >= 0.04  # the cooldown actually delayed the retry
        stats = table.stats()
        assert stats["backoffs"] >= 1
        assert stats["failed_keys"] == 0  # success cleared the history

    def test_consecutive_failures_double_the_cooldown(self):
        table = InFlightTable(failure_backoff=0.01)
        for _ in range(3):
            table._record_failure("k")
        failures, not_before = table._failed_keys["k"]
        assert failures == 3
        assert not_before - time.monotonic() == pytest.approx(0.04, abs=0.02)

    def test_waiters_attaching_to_running_work_are_never_delayed(self):
        table = InFlightTable(failure_backoff=10.0)
        gate = threading.Event()
        results = {}

        def owner_fn():
            gate.wait(timeout=5)
            return "owned"

        def run_owner():
            results["owner"] = table.coalesce("k", owner_fn)

        thread = threading.Thread(target=run_owner)
        thread.start()
        while table.stats()["inflight"] == 0:
            time.sleep(0.001)
        # Fault the key's history: a waiter must still attach instantly.
        table._record_failure("k")
        started = time.monotonic()

        def run_waiter():
            results["waiter"] = table.coalesce("k", lambda: "replayed")

        waiter_thread = threading.Thread(target=run_waiter)
        waiter_thread.start()
        gate.set()
        thread.join(timeout=5)
        waiter_thread.join(timeout=5)
        assert results["owner"] == ("owned", True)
        assert results["waiter"] == ("replayed", False)
        assert time.monotonic() - started < 5  # nowhere near the 10s cooldown

    def test_inflight_wait_fault_skips_the_wait_and_recomputes(self):
        table = InFlightTable()
        gate = threading.Event()
        results = {}

        def owner_fn():
            gate.wait(timeout=5)
            return "owned"

        thread = threading.Thread(
            target=lambda: results.update(owner=table.coalesce("k", owner_fn))
        )
        thread.start()
        while table.stats()["inflight"] == 0:
            time.sleep(0.001)
        configure_fault_plan("inflight.wait:skip@1")
        # The waiter consults inflight.wait, skips the (blocked) owner's
        # future entirely and re-runs its own fn -- degraded but correct.
        result, owner = table.coalesce("k", lambda: "recomputed")
        assert (result, owner) == ("recomputed", False)
        assert not gate.is_set()  # proven: the waiter did not wait
        gate.set()
        thread.join(timeout=5)
        assert results["owner"] == ("owned", True)


# ---------------------------------------------------------------------------
# Client: timeouts and mid-stream disconnects
# ---------------------------------------------------------------------------


def _fake_daemon(handler):
    """A one-connection socket server; returns (port, thread)."""
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    port = listener.getsockname()[1]

    def run():
        try:
            conn, _ = listener.accept()
        except OSError:
            return
        try:
            handler(conn)
        finally:
            conn.close()
            listener.close()

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return port, thread


def _tiny_spec_dict():
    return {
        "application": "qv",
        "num_qubits": 3,
        "num_circuits": 1,
        "sets": ["S1"],
        "shots": 100,
    }


class TestClientResilience:
    def test_mid_stream_disconnect_raises_instead_of_truncating(self):
        def handler(conn):
            conn.recv(65536)
            conn.sendall(
                b"HTTP/1.0 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n\r\n"
            )
            # One job record, then the "daemon dies" -- no stats record.
            conn.sendall(
                b'{"type": "job", "index": 0, "source": "backend", "value": 0.5}\n'
            )

        port, thread = _fake_daemon(handler)
        records = []
        with pytest.raises(ServiceError, match="terminal stats record"):
            for record in submit_study(_tiny_spec_dict(), port=port, timeout=5):
                records.append(record)
        thread.join(timeout=5)
        # Records streamed before the disconnect were still delivered.
        assert [r["type"] for r in records] == ["job"]

    def test_stalled_daemon_times_out_naming_the_knob(self):
        def handler(conn):
            conn.recv(65536)
            time.sleep(1.0)  # never respond within the client's budget

        port, thread = _fake_daemon(handler)
        with pytest.raises(ServiceError, match="REPRO_CLIENT_TIMEOUT"):
            list(submit_study(_tiny_spec_dict(), port=port, timeout=0.2))
        thread.join(timeout=5)

    def test_timeout_default_comes_from_the_environment(self, monkeypatch):
        from repro.service.client import client_timeout

        assert client_timeout() == 300.0
        monkeypatch.setenv("REPRO_CLIENT_TIMEOUT", "7")
        assert client_timeout() == 7.0


# ---------------------------------------------------------------------------
# Serve: graceful drain, request deadlines, health, chaos determinism
# ---------------------------------------------------------------------------


def _spec():
    return StudySpec(
        application="qv", num_qubits=3, num_circuits=2, sets=("S1", "G3"), shots=600
    )


def _study_line(records):
    (study,) = [r for r in records if r["type"] == "study"]
    return encode_record(study)


class TestServeResilience:
    def test_draining_service_rejects_new_studies(self, cold_engine):
        service = StudyService()
        try:
            service.begin_drain()
            with pytest.raises(ServiceDraining):
                service.run_study_spec(_spec())
            health = service.health()
            assert health["status"] == "draining"
            assert service.stats()["service"]["requests_rejected"] == 1
        finally:
            service.close()

    def test_drain_waits_for_the_active_stream_to_finish(self, cold_engine):
        service = StudyService()
        try:
            stream = service.run_study_spec(_spec())
            first = next(stream)  # the request is now active
            assert first["type"] == "job"
            outcome = {}
            drainer = threading.Thread(
                target=lambda: outcome.update(drained=service.drain(timeout=30))
            )
            drainer.start()
            time.sleep(0.05)
            assert not outcome  # drain blocks while the stream is open
            records = [first] + list(stream)  # flush it
            drainer.join(timeout=30)
            assert outcome == {"drained": True}
            # Futures already scheduled flushed: the study completed.
            (study,) = [r for r in records if r["type"] == "study"]
            assert study["complete"] is True
            assert study["drained"] == 0
        finally:
            service.close()

    def test_drain_before_streaming_reports_every_job_drained(self, cold_engine):
        service = StudyService()
        try:
            stream = service.run_study_spec(_spec())  # accepted pre-drain
            service.begin_drain()
            records = list(stream)  # generator body runs after the drain
            jobs = [r for r in records if r["type"] == "job"]
            assert [job["source"] for job in jobs] == ["drained"] * 4
            assert all(job["value"] is None for job in jobs)
            (study,) = [r for r in records if r["type"] == "study"]
            assert study["complete"] is False
            assert study["drained"] == 4
            assert records[-1]["type"] == "stats"
            assert records[-1]["drained"] == 4
            assert service.stats()["service"]["jobs_drained"] == 4
        finally:
            service.close()

    def test_request_deadline_halts_scheduling_but_terminates_the_stream(
        self, cold_engine
    ):
        service = StudyService(request_deadline=0.0)
        try:
            records = list(service.run_study_spec(_spec()))
            jobs = [r for r in records if r["type"] == "job"]
            assert [job["source"] for job in jobs] == ["deadline"] * 4
            (study,) = [r for r in records if r["type"] == "study"]
            assert study["complete"] is False
            assert records[-1]["type"] == "stats"  # the stream always ends
            assert service.stats()["service"]["jobs_deadline"] == 4
        finally:
            service.close()

    def test_health_reports_ok_then_degraded_after_exhaustion(self, cold_engine):
        service = StudyService()
        try:
            assert service.health()["status"] == "ok"
            with pytest.warns(RuntimeWarning, match="retry budget"):
                with pytest.raises(OSError):
                    call_with_retry(
                        lambda: (_ for _ in ()).throw(OSError(errno.EIO, "x")),
                        RetryPolicy(max_attempts=1),
                        sleep=lambda _: None,
                    )
            health = service.health()
            assert health["status"] == "degraded"
            assert health["exhausted"] >= 1
        finally:
            service.close()

    def test_chaos_study_record_is_byte_identical(self, cold_engine):
        service = StudyService()
        try:
            baseline = list(service.run_study_spec(_spec()))
        finally:
            service.close()

        clear_experiment_caches()
        reset_backend_invocation_counts()
        reset_retry_stats()
        configure_fault_plan("backend.run:fail@1;seed=2")
        chaos_service = StudyService()
        try:
            with pytest.warns(RuntimeWarning, match="resilience: retrying"):
                chaos = list(chaos_service.run_study_spec(_spec()))
        finally:
            chaos_service.close()

        assert _study_line(chaos) == _study_line(baseline)
        assert chaos[-1]["type"] == "stats"
        assert chaos[-1]["retries"] >= 1
        resilience = chaos_service.stats()["resilience"]
        assert resilience["requests"]["retries"] >= 1
        assert resilience["faults"]["injected"] == {"backend.run": {"fail": 1}}

    def test_handler_fault_rejects_up_front_then_recovers(self, cold_engine):
        configure_fault_plan("serve.handler:reject@1")
        service = StudyService()
        server = make_http_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            with pytest.raises(ServiceError, match="503"):
                list(submit_study(_tiny_spec_dict(), port=port, timeout=60))
            # The next request is served normally (the @1 rule is spent).
            records = list(submit_study(_tiny_spec_dict(), port=port, timeout=120))
            assert records[-1]["type"] == "stats"
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()

    def test_handler_fault_mid_stream_surfaces_as_an_error_record(self, cold_engine):
        configure_fault_plan("serve.handler:fail@1")
        service = StudyService()
        server = make_http_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        port = server.server_address[1]
        try:
            with pytest.raises(ServiceError, match="InjectedFault"):
                list(submit_study(_tiny_spec_dict(), port=port, timeout=60))
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()


# ---------------------------------------------------------------------------
# Serve: SIGTERM drains and exits 0 (real process, real signal)
# ---------------------------------------------------------------------------


class TestServeSigterm:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import os
        import re
        import signal as signal_module
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        env.pop(FAULT_PLAN_ENV_VAR, None)
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = process.stdout.readline()
            assert re.search(r"listening on http://[\d.]+:\d+", line), line
            process.send_signal(signal_module.SIGTERM)
            stdout, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        assert process.returncode == 0
        assert "drained and shut down" in stdout
