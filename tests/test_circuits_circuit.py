"""Tests for the QuantumCircuit IR."""

import numpy as np
import pytest

from repro.circuits.circuit import Operation, QuantumCircuit
from repro.circuits.gate import named_gate, rzz_gate, unitary_gate
from repro.gates import standard
from repro.gates.unitary import allclose_up_to_global_phase, random_su4
from repro.simulators.statevector import simulate_statevector


class TestOperation:
    def test_operation_qubit_count_must_match_gate(self):
        with pytest.raises(ValueError):
            Operation(named_gate("cz"), (0,))

    def test_operation_qubits_must_be_distinct(self):
        with pytest.raises(ValueError):
            Operation(named_gate("cz"), (1, 1))

    def test_operation_qubits_must_be_non_negative(self):
        with pytest.raises(ValueError):
            Operation(named_gate("x"), (-1,))

    def test_is_two_qubit(self):
        assert Operation(named_gate("cz"), (0, 1)).is_two_qubit
        assert not Operation(named_gate("h"), (0,)).is_two_qubit


class TestCircuitConstruction:
    def test_requires_positive_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_append_and_builder_methods(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cz(1, 2).rz(0.3, 2).swap(0, 2)
        circuit.fsim(0.1, 0.2, 0, 1).xy(0.5, 1, 2).rzz(0.3, 0, 2).cphase(0.2, 0, 1)
        circuit.u3(0.1, 0.2, 0.3, 0).rx(0.4, 1).ry(0.5, 2).x(0)
        assert len(circuit) == 13

    def test_append_rejects_out_of_range_qubits(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            circuit.cz(0, 5)

    def test_extend_and_append_operation(self):
        source = QuantumCircuit(2).h(0).cz(0, 1)
        circuit = QuantumCircuit(2)
        circuit.extend(source.operations)
        assert len(circuit) == 2


class TestCircuitInspection:
    def test_count_ops_and_two_qubit_counts(self):
        circuit = QuantumCircuit(3).h(0).cz(0, 1).cz(1, 2).rz(0.1, 0)
        assert circuit.count_ops() == {"h": 1, "cz": 2, "rz": 1}
        assert circuit.num_two_qubit_gates() == 2
        assert circuit.num_single_qubit_gates() == 2
        assert len(circuit.two_qubit_operations()) == 2

    def test_depth(self):
        circuit = QuantumCircuit(3).h(0).h(1).cz(0, 1).cz(1, 2)
        assert circuit.depth() == 3
        assert circuit.two_qubit_depth() == 2
        assert QuantumCircuit(2).depth() == 0

    def test_active_qubits(self):
        circuit = QuantumCircuit(5).cz(1, 3)
        assert circuit.active_qubits() == [1, 3]


class TestCircuitTransformations:
    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2).h(0)
        clone = circuit.copy()
        clone.cz(0, 1)
        assert len(circuit) == 1
        assert len(clone) == 2

    def test_inverse_cancels_circuit(self, rng):
        circuit = QuantumCircuit(2)
        circuit.unitary(random_su4(rng), [0, 1])
        circuit.h(0).rz(0.7, 1)
        combined = circuit.compose(circuit.inverse())
        assert allclose_up_to_global_phase(combined.to_unitary(), np.eye(4))

    def test_compose_with_mapping(self):
        inner = QuantumCircuit(2).cz(0, 1)
        outer = QuantumCircuit(3)
        combined = outer.compose(inner, qubits=[2, 0])
        assert combined.operations[0].qubits == (2, 0)

    def test_compose_validates_mapping(self):
        inner = QuantumCircuit(2).cz(0, 1)
        with pytest.raises(ValueError):
            QuantumCircuit(3).compose(inner, qubits=[0])
        with pytest.raises(ValueError):
            QuantumCircuit(3).compose(inner, qubits=[0, 9])

    def test_remap_qubits(self):
        circuit = QuantumCircuit(2).cz(0, 1)
        remapped = circuit.remap_qubits({0: 3, 1: 1}, num_qubits=4)
        assert remapped.operations[0].qubits == (3, 1)
        assert remapped.num_qubits == 4

    def test_map_operations_substitution(self):
        circuit = QuantumCircuit(2).rzz(0.3, 0, 1).h(0)

        def expand(operation):
            if operation.gate.name == "rzz":
                yield Operation(named_gate("cz"), operation.qubits)
                yield Operation(named_gate("cz"), operation.qubits)
            else:
                yield operation

        expanded = circuit.map_operations(expand)
        assert expanded.count_ops() == {"cz": 2, "h": 1}


class TestCircuitUnitary:
    def test_bell_circuit_unitary_matches_statevector(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        unitary = circuit.to_unitary()
        state = simulate_statevector(circuit)
        assert np.allclose(unitary[:, 0], state)

    def test_unitary_of_rzz_is_diagonal(self):
        circuit = QuantumCircuit(2)
        circuit.append(rzz_gate(0.4), [0, 1])
        unitary = circuit.to_unitary()
        assert np.allclose(unitary, np.diag(np.diagonal(unitary)))

    def test_to_unitary_guards_large_circuits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(11).to_unitary()

    def test_gate_order_matters(self):
        ab = QuantumCircuit(1).x(0).rz(0.5, 0).to_unitary()
        ba = QuantumCircuit(1).rz(0.5, 0).x(0).to_unitary()
        assert not np.allclose(ab, ba)


class TestCircuitRendering:
    def test_to_text_lists_operations(self):
        circuit = QuantumCircuit(2, name="demo").h(0).fsim(0.1, 0.2, 0, 1)
        text = circuit.to_text()
        assert "demo" in text
        assert "fsim" in text
        assert "[0, 1]" in text
