"""Tests for the application benchmark generators (QV, QAOA, FH, QFT)."""

import numpy as np
import pytest

from repro.applications import (
    fermi_hubbard_circuit,
    fh_suite,
    fh_unitaries,
    fourier_state_preparation,
    qaoa_maxcut_circuit,
    qaoa_suite,
    qft_benchmark_circuit,
    qft_circuit,
    qft_target_value,
    qft_unitaries,
    qv_circuit,
    qv_suite,
    random_maxcut_edges,
    random_su4_unitaries,
    random_zz_unitaries,
    unitary_ensembles,
)
from repro.gates.unitary import is_unitary
from repro.metrics.hop import ideal_heavy_output_probability
from repro.metrics.success import success_rate
from repro.simulators.statevector import ideal_probabilities


class TestQuantumVolume:
    def test_structure(self):
        circuit = qv_circuit(4, rng=np.random.default_rng(0))
        assert circuit.num_qubits == 4
        # n layers of floor(n/2) SU(4) blocks.
        assert circuit.num_two_qubit_gates() == 4 * 2
        assert all(op.gate.name == "su4" for op in circuit)

    def test_odd_width_leaves_one_qubit_idle_per_layer(self):
        circuit = qv_circuit(5, rng=np.random.default_rng(1))
        assert circuit.num_two_qubit_gates() == 5 * 2

    def test_custom_depth(self):
        circuit = qv_circuit(4, depth=2, rng=np.random.default_rng(2))
        assert circuit.num_two_qubit_gates() == 4

    def test_suite_is_deterministic_per_seed(self):
        a = qv_suite(3, 2, seed=5)
        b = qv_suite(3, 2, seed=5)
        for circuit_a, circuit_b in zip(a, b):
            assert np.allclose(circuit_a.to_unitary(), circuit_b.to_unitary())

    def test_ideal_heavy_output_probability_is_high(self):
        # Random circuits asymptotically give ~0.85; even small ones exceed 2/3.
        values = [
            ideal_heavy_output_probability(ideal_probabilities(c))
            for c in qv_suite(4, 3, seed=3)
        ]
        assert np.mean(values) > 2 / 3

    def test_raw_unitary_ensemble(self):
        unitaries = random_su4_unitaries(5, seed=1)
        assert len(unitaries) == 5
        assert all(is_unitary(u) for u in unitaries)


class TestQAOA:
    def test_structure_and_edge_count(self):
        circuit = qaoa_maxcut_circuit(6, rng=np.random.default_rng(0))
        counts = circuit.count_ops()
        assert counts["h"] == 6
        assert counts["rx"] == 6
        assert counts["rzz"] >= 5  # ~0.75 * n, at least a spanning path

    def test_explicit_edges_and_angles(self):
        circuit = qaoa_maxcut_circuit(3, edges=[(0, 1), (1, 2)], gamma=0.5, beta=0.25)
        rzz_ops = [op for op in circuit if op.gate.name == "rzz"]
        assert len(rzz_ops) == 2
        assert all(op.gate.params == (0.5,) for op in rzz_ops)

    def test_random_edges_valid(self):
        edges = random_maxcut_edges(5, np.random.default_rng(3))
        assert all(0 <= a < b < 5 for a, b in edges)
        assert len(set(edges)) == len(edges)

    def test_suite_size(self):
        assert len(qaoa_suite(4, 3, seed=0)) == 3

    def test_zz_unitary_ensemble(self):
        assert all(is_unitary(u) for u in random_zz_unitaries(4, seed=0))


class TestFermiHubbard:
    def test_operation_counts_scale_with_size(self):
        circuit = fermi_hubbard_circuit(8)
        counts = circuit.count_ops()
        hops = counts.get("xx_plus_yy", 0)
        zzs = counts.get("rzz", 0)
        # ~4n hopping terms and ~2n interaction terms (paper Section VI).
        assert 2 * 8 <= hops <= 4 * 8
        assert 8 <= zzs <= 2 * 8
        assert counts.get("x", 0) == 4  # initial half-filling layer

    def test_trotter_steps_multiply_depth(self):
        one = fermi_hubbard_circuit(6, trotter_steps=1).num_two_qubit_gates()
        two = fermi_hubbard_circuit(6, trotter_steps=2).num_two_qubit_gates()
        assert two == 2 * one

    def test_initial_layer_optional(self):
        circuit = fermi_hubbard_circuit(6, initial_x_layer=False)
        assert "x" not in circuit.count_ops()

    def test_suite_and_unitaries(self):
        assert len(fh_suite(6, 2, seed=1)) == 2
        assert all(is_unitary(u) for u in fh_unitaries(6, seed=1))


class TestQFT:
    def test_gate_counts(self):
        n = 5
        circuit = qft_circuit(n)
        counts = circuit.count_ops()
        assert counts["h"] == n
        assert counts["cphase"] == n * (n - 1) // 2

    def test_final_swaps_option(self):
        circuit = qft_circuit(4, include_final_swaps=True)
        assert circuit.count_ops().get("swap", 0) == 2

    def test_benchmark_has_unit_ideal_success(self):
        for n in (3, 4):
            target = qft_target_value(n)
            circuit = qft_benchmark_circuit(n, target)
            ideal = ideal_probabilities(circuit)
            assert success_rate(ideal, target) == pytest.approx(1.0, abs=1e-9)

    def test_preparation_uses_only_single_qubit_gates(self):
        preparation = fourier_state_preparation(4, 5)
        assert preparation.num_two_qubit_gates() == 0

    def test_value_range_checked(self):
        with pytest.raises(ValueError):
            fourier_state_preparation(3, 8)

    def test_qft_unitary_ensemble(self):
        unitaries = qft_unitaries(5)
        assert len(unitaries) == 4
        assert all(is_unitary(u) for u in unitaries)


class TestEnsembles:
    def test_unitary_ensembles_keys_and_types(self):
        ensembles = unitary_ensembles(3, seed=0)
        assert set(ensembles) == {"qv", "qaoa", "qft", "fh", "swap"}
        for unitaries in ensembles.values():
            assert all(u.shape == (4, 4) for u in unitaries)
            assert all(is_unitary(u) for u in unitaries)
