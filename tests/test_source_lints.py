"""The custom AST lints: purity, env-policy and lock-discipline.

Two tiers.  The production tier runs :func:`run_source_lints` over the
real ``repro`` package and demands zero findings -- that is the same
gate ``repro check --source`` enforces in CI, so this test failing means
the tree itself regressed.  The synthetic tier feeds hand-written
modules through each lint and asserts violations are *detected*: a
dataclass field missing from its fingerprint, a direct ``os.environ``
read, an unlocked cache mutation.  Synthetic trees pass ``allowlist={}``
so the production allowlist cannot mask a detection regression.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.source_lints import (
    FINGERPRINT_ALLOWLIST,
    default_source_root,
    iter_source_files,
    run_source_lints,
)


def _lint_snippet(tmp_path, source, allowlist=None):
    (tmp_path / "snippet.py").write_text(textwrap.dedent(source), encoding="utf-8")
    return run_source_lints(
        tmp_path, allowlist={} if allowlist is None else allowlist
    )


class TestProductionTree:
    def test_repro_package_is_clean(self):
        assert run_source_lints() == []

    def test_default_root_is_the_package(self):
        root = default_source_root()
        assert root.name == "repro"
        assert (root / "config.py").exists()

    def test_iter_source_files_is_sorted(self):
        files = iter_source_files(default_source_root())
        assert files == sorted(files)
        assert any(path.name == "config.py" for path in files)


class TestFingerprintPurity:
    def test_missing_field_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Options:
                shots: int
                seed: int

                def fingerprint(self):
                    return str(self.shots)
            """,
        )
        assert len(findings) == 1
        assert findings[0].check == "fingerprint-purity"
        assert "Options.seed" in findings[0].message
        assert findings[0].where.startswith("snippet.py:")

    def test_all_fields_referenced_is_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Options:
                shots: int
                seed: int

                def fingerprint(self):
                    return f"{self.shots}-{self.seed}"
            """,
        )
        assert findings == []

    def test_asdict_covers_every_field(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import asdict, dataclass

            @dataclass
            class Spec:
                alpha: int
                beta: int
                gamma: int

                def fingerprint(self):
                    return str(sorted(asdict(self).items()))
            """,
        )
        assert findings == []

    def test_transitive_helper_coverage(self, tmp_path):
        """fingerprint -> to_json_dict indirection still counts as hashed."""
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Spec:
                alpha: int
                beta: int

                def to_json_dict(self):
                    return {"alpha": self.alpha, "beta": self.beta}

                def fingerprint(self):
                    return str(self.to_json_dict())
            """,
        )
        assert findings == []

    def test_classvar_is_not_a_field(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass
            class Spec:
                SCHEMA: ClassVar[int] = 3
                alpha: int

                def fingerprint(self):
                    return str(self.alpha)
            """,
        )
        assert findings == []

    def test_allowlist_suppresses(self, tmp_path):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Options:
                shots: int
                seed: int

                def fingerprint(self):
                    return str(self.shots)
        """
        assert _lint_snippet(
            tmp_path, source, allowlist={"Options.seed": "derived, never hashed"}
        ) == []

    def test_stale_allowlist_entry_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Options:
                shots: int

                def fingerprint(self):
                    return str(self.shots)
            """,
            allowlist={"Options.gone": "field was removed"},
        )
        assert len(findings) == 1
        assert findings[0].check == "fingerprint-allowlist"
        assert "stale" in findings[0].message

    def test_unscanned_class_allowlist_is_tolerated(self, tmp_path):
        """Entries for classes outside the tree are not flagged as stale."""
        findings = _lint_snippet(
            tmp_path,
            "x = 1\n",
            allowlist={"Elsewhere.field": "lives in another tree"},
        )
        assert findings == []

    @pytest.mark.parametrize(
        "key,justification",
        [("NoDotKey", "reason"), ("Options.seed", "   ")],
    )
    def test_malformed_allowlist_entry_detected(self, tmp_path, key, justification):
        findings = _lint_snippet(
            tmp_path, "x = 1\n", allowlist={key: justification}
        )
        assert len(findings) == 1
        assert "malformed" in findings[0].message

    def test_plain_class_without_fingerprint_ignored(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from dataclasses import dataclass

            @dataclass
            class Record:
                value: int
            """,
        )
        assert findings == []

    def test_production_allowlist_entries_are_justified(self):
        for key, justification in FINGERPRINT_ALLOWLIST.items():
            class_name, _, field_name = key.partition(".")
            assert class_name and field_name, key
            assert justification.strip(), key


class TestEnvPolicy:
    def test_direct_environ_read_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import os

            def knob():
                return os.environ.get("REPRO_KNOB", "")
            """,
        )
        assert len(findings) == 1
        assert findings[0].check == "env-policy"
        assert "os.environ" in findings[0].message

    def test_getenv_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import os

            VALUE = os.getenv("REPRO_KNOB")
            """,
        )
        assert [f for f in findings if "os.getenv" in f.message]

    def test_from_import_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from os import environ

            VALUE = environ.get("REPRO_KNOB")
            """,
        )
        assert [f for f in findings if "importing environ" in f.message]

    def test_config_py_is_exempt(self, tmp_path):
        (tmp_path / "config.py").write_text(
            'import os\nVALUE = os.environ.get("REPRO_KNOB")\n', encoding="utf-8"
        )
        assert run_source_lints(tmp_path, allowlist={}) == []

    def test_helper_usage_is_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from repro.config import str_env

            VALUE = str_env("REPRO_KNOB")
            """,
        )
        assert findings == []


class TestLockDiscipline:
    def test_unlocked_mutation_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            _SIM_CACHE_LOCK = threading.Lock()

            def put(key, value):
                _SIM_CACHE[key] = value
            """,
        )
        assert len(findings) == 1
        assert findings[0].check == "lock-discipline"
        assert "outside 'with _SIM_CACHE_LOCK:'" in findings[0].message

    def test_locked_mutation_is_clean(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            _SIM_CACHE_LOCK = threading.Lock()

            def put(key, value):
                with _SIM_CACHE_LOCK:
                    _SIM_CACHE[key] = value
                    _SIM_CACHE.move_to_end(key)
                    while len(_SIM_CACHE) > 4:
                        _SIM_CACHE.popitem(last=False)
            """,
        )
        assert findings == []

    def test_missing_paired_lock_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            """,
        )
        assert len(findings) == 1
        assert "no paired _SIM_CACHE_LOCK" in findings[0].message

    def test_mutating_method_outside_lock_detected(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            _SIM_CACHE_LOCK = threading.Lock()

            def evict():
                _SIM_CACHE.popitem(last=False)
            """,
        )
        assert [f for f in findings if ".popitem() call" in f.message]

    def test_wrong_lock_does_not_count(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            _SIM_CACHE_LOCK = threading.Lock()
            _OTHER_LOCK = threading.Lock()

            def put(key, value):
                with _OTHER_LOCK:
                    _SIM_CACHE[key] = value
            """,
        )
        assert [f for f in findings if "outside 'with _SIM_CACHE_LOCK:'" in f.message]

    def test_reads_are_not_flagged(self, tmp_path):
        findings = _lint_snippet(
            tmp_path,
            """
            import threading
            from collections import OrderedDict

            _SIM_CACHE = OrderedDict()
            _SIM_CACHE_LOCK = threading.Lock()

            def get(key):
                return _SIM_CACHE.get(key)
            """,
        )
        assert findings == []

    def test_cache_objects_are_exempt(self, tmp_path):
        """Cache *instances* own their lock; only bare dicts are linted."""
        findings = _lint_snippet(
            tmp_path,
            """
            class CompilationCache:
                def put(self, key, value):
                    pass

            _GLOBAL_COMPILATION_CACHE = CompilationCache()

            def put(key, value):
                _GLOBAL_COMPILATION_CACHE.update(key, value)
            """,
        )
        assert findings == []


class TestParseFailure:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n", encoding="utf-8")
        findings = run_source_lints(tmp_path, allowlist={})
        assert len(findings) == 1
        assert findings[0].check == "parse"
