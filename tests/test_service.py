"""The long-lived study service: protocol, dedup table, server, client.

The contracts the ``repro serve`` daemon stakes its existence on:

* **Spec identity** -- a :class:`StudySpec` survives its JSON round trip
  and fingerprints stably, so two submissions can be proven identical.
* **In-flight dedup** -- N threads submitting identical work through the
  :class:`InFlightTable` cost exactly one execution (``submit``) or one
  expensive run plus N-1 cheap replays (``coalesce``).
* **Service dedup end to end** -- N concurrent identical studies cost
  exactly one set of backend invocations; a warm submission costs zero
  and returns a byte-identical ``study`` record.
* **Sharding** -- a ``--shard k/N`` service defers out-of-shard misses,
  the shards partition the key space exactly, and two shards sharing a
  disk directory complete a study between them.
* **HTTP round trip** -- the stdlib client streams the same records over
  a real socket that the in-process generator yields.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.experiments.engine import clear_experiment_caches
from repro.service.client import ServiceError, fetch_stats, submit_study
from repro.service.dedup import InFlightTable
from repro.service.protocol import (
    ShardSpec,
    StudySpec,
    decode_record,
    encode_record,
    resolve_metric,
)
from repro.service.server import StudyService, make_http_server
from repro.simulators.backend import (
    backend_invocation_counts,
    reset_backend_invocation_counts,
)


def _small_spec(**overrides):
    """A study small enough for tests: 2 circuits x 2 sets = 4 jobs."""
    base = dict(
        application="qv",
        num_qubits=3,
        num_circuits=2,
        sets=("S1", "G3"),
        shots=600,
    )
    base.update(overrides)
    return StudySpec(**base)


def _sources(records):
    return [r["source"] for r in records if r["type"] == "job"]


def _study_line(records):
    (study,) = [r for r in records if r["type"] == "study"]
    return encode_record(study)


def _total_invocations():
    return sum(backend_invocation_counts().values())


@pytest.fixture()
def cold_engine():
    clear_experiment_caches()
    reset_backend_invocation_counts()
    yield
    clear_experiment_caches()


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestStudySpec:
    def test_json_round_trip(self):
        spec = _small_spec(metric="xeb", catalogue="rigetti", sets=("R2",))
        assert StudySpec.from_json_dict(spec.to_json_dict()) == spec

    def test_fingerprint_stable_and_content_sensitive(self):
        assert _small_spec().fingerprint() == _small_spec().fingerprint()
        assert _small_spec().fingerprint() != _small_spec(shots=601).fingerprint()

    def test_unknown_field_rejected(self):
        payload = _small_spec().to_json_dict()
        payload["shotz"] = 100
        with pytest.raises(ValueError, match="shotz"):
            StudySpec.from_json_dict(payload)

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(num_qubits=1),
            dict(num_circuits=0),
            dict(metric="fidelity"),
            dict(catalogue="ibm"),
            dict(topology="star"),
            dict(error_scale=0.0),
            dict(error_scales=()),
            dict(error_scales=(1.0, 0.0)),
            dict(error_scales=(2.0, 2.0)),
        ],
    )
    def test_invalid_specs_rejected(self, overrides):
        with pytest.raises(ValueError):
            _small_spec(**overrides)

    def test_error_scales_round_trip_and_fingerprint_compat(self):
        swept = _small_spec(error_scales=(1.0, 2.0))
        assert StudySpec.from_json_dict(swept.to_json_dict()) == swept
        assert swept.fingerprint() != _small_spec().fingerprint()
        # A spec without a sweep serialises exactly as it did before the
        # field existed, so pre-existing fingerprints stay valid.
        assert "error_scales" not in _small_spec().to_json_dict()

    def test_every_supported_metric_resolves(self):
        from repro.service.protocol import SUPPORTED_METRICS

        for name, display in SUPPORTED_METRICS.items():
            resolved_name, fn = resolve_metric(name)
            assert resolved_name == display
            assert callable(fn)

    def test_ndjson_round_trip(self):
        record = {"type": "job", "value": 0.5, "set": "S1"}
        assert decode_record(encode_record(record)) == record
        assert decode_record(b"   \n") is None


class TestShardSpec:
    def test_parse(self):
        assert ShardSpec.parse("1/2") == ShardSpec(index=0, total=2)
        assert ShardSpec.parse("3/3") == ShardSpec(index=2, total=3)
        assert str(ShardSpec.parse("2/5")) == "2/5"

    @pytest.mark.parametrize("raw", ["0/2", "3/2", "x/2", "1", "1/2/3"])
    def test_parse_rejects(self, raw):
        with pytest.raises(ValueError):
            ShardSpec.parse(raw)

    def test_shards_partition_the_key_space(self):
        keys = [("sim", f"digest-{i}", i) for i in range(64)]
        shards = [ShardSpec(index=k, total=3) for k in range(3)]
        for key in keys:
            owners = [shard for shard in shards if shard.owns(key)]
            assert len(owners) == 1  # exactly one owner per key

    def test_single_shard_owns_everything(self):
        assert ShardSpec(index=0, total=1).owns(("anything",))


# ---------------------------------------------------------------------------
# In-flight table
# ---------------------------------------------------------------------------


class TestInFlightTable:
    def test_concurrent_submits_share_one_execution(self):
        from concurrent.futures import ThreadPoolExecutor

        table = InFlightTable()
        runs = []
        run_lock = threading.Lock()
        gate = threading.Event()

        def work():
            gate.wait(5)
            with run_lock:
                runs.append(threading.get_ident())
            return "result"

        with ThreadPoolExecutor(max_workers=4) as pool:
            barrier = threading.Barrier(8)
            outcomes = []
            outcomes_lock = threading.Lock()

            def arrive():
                barrier.wait(5)
                future, owner = table.submit("key", lambda: pool.submit(work))
                with outcomes_lock:
                    outcomes.append(owner)
                return future

            threads = [threading.Thread(target=arrive) for _ in range(8)]
            for thread in threads:
                thread.start()
            # Hold the work until every arrival has gone through submit --
            # once the future resolves the key retires, and a later
            # arrival would (correctly) start fresh work.
            for _ in range(200):
                with outcomes_lock:
                    if len(outcomes) == 8:
                        break
                threading.Event().wait(0.01)
            gate.set()
            for thread in threads:
                thread.join(10)

        assert len(runs) == 1  # the work ran exactly once
        assert sum(outcomes) == 1  # exactly one owner
        stats = table.stats()
        assert stats["started"] == 1
        assert stats["coalesced"] == 7
        assert stats["completed"] == 1
        assert stats["inflight"] == 0  # key retired

    def test_coalesce_owner_runs_once_waiters_rerun(self):
        table = InFlightTable()
        calls = []
        calls_lock = threading.Lock()
        release = threading.Event()
        started = threading.Event()

        def fn():
            with calls_lock:
                calls.append(threading.get_ident())
                first = len(calls) == 1
            if first:
                started.set()
                release.wait(5)
            return "compiled"

        results = []

        def owner():
            results.append(table.coalesce("key", fn))

        def waiter():
            started.wait(5)
            results.append(table.coalesce("key", fn))

        owner_thread = threading.Thread(target=owner)
        waiter_thread = threading.Thread(target=waiter)
        owner_thread.start()
        waiter_thread.start()
        started.wait(5)
        # Give the waiter a moment to attach before releasing the owner.
        import time

        time.sleep(0.05)
        release.set()
        owner_thread.join(10)
        waiter_thread.join(10)

        assert sorted(owner for _, owner in results) == [False, True]
        assert all(value == "compiled" for value, _ in results)
        # The waiter re-ran fn (the replay); the expensive path ran once.
        assert len(calls) == 2
        assert table.stats()["inflight"] == 0

    def test_failed_key_retires_for_retry(self):
        table = InFlightTable()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            table.coalesce("key", boom)
        assert table.stats()["failed"] == 1
        assert table.stats()["inflight"] == 0
        # Next arrival owns a fresh run instead of a poisoned future.
        value, owner = table.coalesce("key", lambda: "fine")
        assert (value, owner) == ("fine", True)

    def test_distinct_keys_do_not_coalesce(self):
        table = InFlightTable()
        table.coalesce("a", lambda: 1)
        table.coalesce("b", lambda: 2)
        assert table.stats()["started"] == 2
        assert table.stats()["coalesced"] == 0


# ---------------------------------------------------------------------------
# Service (in-process)
# ---------------------------------------------------------------------------


class TestStudyService:
    def test_cold_run_executes_each_job_once(self, cold_engine):
        service = StudyService()
        try:
            records = list(service.run_study_spec(_small_spec()))
        finally:
            service.close()
        assert _sources(records) == ["backend"] * 4
        assert _total_invocations() == 4
        (study,) = [r for r in records if r["type"] == "study"]
        assert study["complete"] is True
        assert len(study["rows"]) == 2
        assert records[-1]["type"] == "stats"
        assert records[-1]["executed"] == 4

    def test_warm_run_zero_invocations_byte_identical_study(self, cold_engine):
        service = StudyService()
        try:
            cold = list(service.run_study_spec(_small_spec()))
            invocations_after_cold = _total_invocations()
            warm = list(service.run_study_spec(_small_spec()))
        finally:
            service.close()
        assert _total_invocations() == invocations_after_cold  # zero new
        assert _sources(warm) == ["memory"] * 4
        assert warm[-1]["executed"] == 0
        assert _study_line(warm) == _study_line(cold)

    def test_concurrent_identical_studies_cost_one_execution_set(self, cold_engine):
        service = StudyService(exec_workers=2)
        spec = _small_spec()
        results = {}
        errors = []

        def run(tag):
            try:
                results[tag] = list(service.run_study_spec(spec))
            except Exception as error:  # pragma: no cover - failure detail
                errors.append(error)

        try:
            threads = [
                threading.Thread(target=run, args=(tag,)) for tag in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
        finally:
            service.close()
        assert not errors
        assert len(results) == 4
        # The acceptance bar: exactly one set of backend invocations for
        # the study's 4 unique jobs, no matter how many submitters.
        assert _total_invocations() == 4
        lines = {_study_line(records) for records in results.values()}
        assert len(lines) == 1  # every submitter got the identical payload
        executed = sum(records[-1]["executed"] for records in results.values())
        assert executed == 4

    def test_consistent_counters_across_concurrent_studies(self, cold_engine):
        service = StudyService(exec_workers=2)
        spec = _small_spec()

        def run():
            list(service.run_study_spec(spec))

        try:
            threads = [threading.Thread(target=run) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)
        finally:
            service.close()
        stats = service.stats()
        counters = stats["service"]
        assert counters["studies"] == 3
        assert counters["jobs"] == 12
        by_source = (
            counters["jobs_memory"]
            + counters["jobs_disk"]
            + counters["jobs_backend"]
            + counters["jobs_inflight"]
            + counters["jobs_deferred"]
        )
        assert by_source == counters["jobs"]
        assert counters["jobs_backend"] == 4
        assert counters["jobs_deferred"] == 0
        inflight = stats["inflight_simulations"]
        assert inflight["started"] == 4
        assert inflight["inflight"] == 0

    def test_unknown_names_rejected_before_any_work(self, cold_engine):
        service = StudyService()
        try:
            with pytest.raises(ValueError, match="unknown application"):
                list(service.run_study_spec(_small_spec(application="nope")))
            with pytest.raises(ValueError, match="unknown instruction set"):
                list(service.run_study_spec(_small_spec(sets=("S1", "Z9"))))
            with pytest.raises(ValueError, match="unknown backend"):
                list(service.run_study_spec(_small_spec(backend="fpga")))
        finally:
            service.close()
        assert _total_invocations() == 0

    def test_set_order_is_canonical_not_request_order(self, cold_engine):
        service = StudyService()
        try:
            forward = list(service.run_study_spec(_small_spec(sets=("S1", "G3"))))
            reversed_ = list(service.run_study_spec(_small_spec(sets=("G3", "S1"))))
        finally:
            service.close()
        order = [r["set"] for r in forward if r["type"] == "job"]
        assert order == ["S1", "S1", "G3", "G3"]
        assert [r["set"] for r in reversed_ if r["type"] == "job"] == order


class TestBatchedService:
    """``repro serve --batch``: vectorised replay of queued same-structure jobs."""

    def _sweep_spec(self, **overrides):
        return _small_spec(
            sets=("FullfSim",), error_scales=(1.0, 2.0, 3.0), **overrides
        )

    def test_error_scales_expand_to_aliases_in_canonical_order(self, cold_engine):
        service = StudyService()
        try:
            records = list(service.run_study_spec(self._sweep_spec()))
        finally:
            service.close()
        jobs = [r for r in records if r["type"] == "job"]
        assert [(r["set"], r["error_scale"]) for r in jobs] == [
            ("FullfSim", 1.0),
            ("FullfSim", 1.0),
            ("FullfSim-2x", 2.0),
            ("FullfSim-2x", 2.0),
            ("FullfSim-3x", 3.0),
            ("FullfSim-3x", 3.0),
        ]
        (study,) = [r for r in records if r["type"] == "study"]
        assert [row["instruction_set"] for row in study["rows"]] == [
            "FullfSim",
            "FullfSim-2x",
            "FullfSim-3x",
        ]

    def test_batched_request_fewer_passes_same_study_bytes(self, cold_engine):
        spec = self._sweep_spec()
        sequential_service = StudyService()
        try:
            sequential = list(sequential_service.run_study_spec(spec))
        finally:
            sequential_service.close()
        sequential_invocations = _total_invocations()
        assert sequential[-1]["batched_passes"] == 0

        clear_experiment_caches()
        reset_backend_invocation_counts()
        batched_service = StudyService(batch=0)
        try:
            batched = list(batched_service.run_study_spec(spec))
            stats = batched_service.stats()
        finally:
            batched_service.close()
        # One vectorised pass per circuit's structure group (2 circuits x
        # 3 scales = 6 jobs -> 2 passes) instead of 6 invocations.
        assert _total_invocations() < sequential_invocations
        assert batched[-1]["batched_passes"] >= 1
        assert _sources(batched) == ["backend"] * 6
        assert stats["service"]["batched_passes"] >= 1
        assert stats["batch"] == 0
        assert stats["array_backends"].get("numpy", {}).get("batched_passes", 0) >= 1
        # The deterministic payload is unchanged by the execution strategy.
        assert _study_line(batched) == _study_line(sequential)

    def test_warm_batched_submission_is_free_and_identical(self, cold_engine):
        spec = self._sweep_spec(shots=601)
        service = StudyService(batch=0)
        try:
            cold = list(service.run_study_spec(spec))
            invocations_after_cold = _total_invocations()
            warm = list(service.run_study_spec(spec))
        finally:
            service.close()
        assert _total_invocations() == invocations_after_cold
        assert _sources(warm) == ["memory"] * 6
        assert warm[-1]["executed"] == 0
        assert warm[-1]["batched_passes"] == 0
        assert _study_line(warm) == _study_line(cold)

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            StudyService(batch=-2)


class TestSharding:
    def test_shard_defers_out_of_shard_misses(self, cold_engine, tmp_path):
        cache_dir = str(tmp_path / "shared")
        spec = _small_spec()
        shard = ShardSpec(index=0, total=2)
        service = StudyService(cache_dir=cache_dir, shard=shard)
        try:
            records = list(service.run_study_spec(spec))
        finally:
            service.close()
        sources = _sources(records)
        assert set(sources) <= {"backend", "deferred"}
        deferred = sources.count("deferred")
        assert _total_invocations() == 4 - deferred
        (study,) = [r for r in records if r["type"] == "study"]
        if deferred:
            assert study["complete"] is False
            assert "rows" not in study
        # Deferred jobs carry no value.
        for record in records:
            if record["type"] == "job" and record["source"] == "deferred":
                assert record["value"] is None

    def test_two_shards_complete_a_study_through_the_shared_disk(
        self, cold_engine, tmp_path
    ):
        cache_dir = str(tmp_path / "shared")
        spec = _small_spec()

        # "Host" A computes its slice into the shared directory ...
        service_a = StudyService(cache_dir=cache_dir, shard=ShardSpec(0, 2))
        try:
            records_a = list(service_a.run_study_spec(spec))
        finally:
            service_a.close()
        # ... then "host" B (fresh in-process caches = fresh process)
        # computes the complement ...
        clear_experiment_caches()
        service_b = StudyService(cache_dir=cache_dir, shard=ShardSpec(1, 2))
        try:
            records_b = list(service_b.run_study_spec(spec))
        finally:
            service_b.close()
        deferred_a = _sources(records_a).count("deferred")
        deferred_b = _sources(records_b).count("deferred")
        assert deferred_a + deferred_b <= 4
        # B saw A's slice in the shared disk tier, so together they
        # simulated each unique job exactly once.
        assert _total_invocations() == 4

        # ... and a final submission to either host completes from cache
        # with zero new invocations.
        clear_experiment_caches()
        reset_backend_invocation_counts()
        service_c = StudyService(cache_dir=cache_dir, shard=ShardSpec(0, 2))
        try:
            final = list(service_c.run_study_spec(spec))
        finally:
            service_c.close()
        assert _total_invocations() == 0
        (study,) = [r for r in final if r["type"] == "study"]
        assert study["complete"] is True
        assert _sources(final) == ["disk"] * 4


# ---------------------------------------------------------------------------
# HTTP round trip
# ---------------------------------------------------------------------------


@pytest.fixture()
def http_service(cold_engine):
    service = StudyService()
    server = make_http_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        service.close()


class TestHTTP:
    def test_submit_streams_the_full_record_sequence(self, http_service):
        _service, port = http_service
        records = list(submit_study(_small_spec(), port=port))
        assert [r["type"] for r in records] == ["job"] * 4 + ["study", "stats"]
        assert _sources(records) == ["backend"] * 4

    def test_dict_spec_and_byte_identical_warm_payload(self, http_service):
        _service, port = http_service
        spec_dict = _small_spec().to_json_dict()
        cold = list(submit_study(spec_dict, port=port))
        warm = list(submit_study(spec_dict, port=port))
        assert warm[-1]["executed"] == 0
        assert _study_line(warm) == _study_line(cold)

    def test_invalid_spec_rejected_client_side(self, http_service):
        _service, port = http_service
        with pytest.raises(ValueError, match="bogus"):
            list(submit_study({"application": "qv", "num_qubits": 3, "bogus": 1}, port=port))

    def test_malformed_body_rejected_server_side(self, http_service):
        import http.client

        _service, port = http_service
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        try:
            connection.request(
                "POST",
                "/v1/studies",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            connection.close()

    def test_build_time_error_raises_service_error(self, http_service):
        # An application name that passes spec validation but fails at
        # build time: the daemon validates eagerly and answers 400
        # before committing to the stream.
        _service, port = http_service
        with pytest.raises(ServiceError):
            list(
                submit_study(
                    StudySpec(application="not-a-real-app", num_qubits=3), port=port
                )
            )

    def test_stats_endpoint(self, http_service):
        _service, port = http_service
        list(submit_study(_small_spec(), port=port))
        stats = fetch_stats(port=port)
        assert stats["service"]["studies"] == 1
        assert stats["service"]["jobs"] == 4
        assert "inflight_simulations" in stats
        assert json.dumps(stats)  # JSON-serialisable end to end
