"""Tests for the decomposition-only experiments (Figures 6 and 8)."""

import numpy as np
import pytest

from repro.experiments.fig6 import Figure6Config, run_figure6
from repro.experiments.fig8 import Figure8Config, run_figure8


@pytest.fixture(scope="module")
def figure6_result(shared_decomposer):
    config = Figure6Config(unitaries_per_application=2, applications=["qaoa", "qft"], seed=3)
    return run_figure6(config, decomposer=shared_decomposer)


class TestFigure6:
    def test_rows_cover_all_methods_and_targets(self, figure6_result):
        methods = {row.method for row in figure6_result.rows}
        targets = {row.target for row in figure6_result.rows}
        assert "Cirq" in methods and "NuOp-100%" in methods and "NuOp-95%" in methods
        assert targets == {"cz", "syc", "iswap", "sqrt_iswap"}

    def test_nuop_never_exceeds_baseline(self, figure6_result):
        """Figure 6 headline: NuOp matches or beats the Cirq-style baseline."""
        for target in ("cz", "syc", "iswap"):
            baseline = figure6_result.mean_count("Cirq", target)
            nuop = figure6_result.mean_count("NuOp-100%", target)
            assert nuop <= baseline + 1e-9

    def test_approximation_reduces_counts_monotonically(self, figure6_result):
        for target in ("cz", "syc"):
            exact = figure6_result.mean_count("NuOp-100%", target)
            loose = figure6_result.mean_count("NuOp-95%", target)
            assert loose <= exact + 1e-9

    def test_decomposition_error_tracked_for_approximate_modes(self, figure6_result):
        errors = [
            row.mean_decomposition_error
            for row in figure6_result.rows
            if row.method == "NuOp-100%" and row.mean_decomposition_error is not None
        ]
        assert errors and max(errors) < 1e-5

    def test_reduction_factor_reported(self, figure6_result):
        assert figure6_result.reduction_vs_baseline("NuOp-100%") >= 1.0
        assert "Figure 6" in figure6_result.format_table()


class TestFigure8:
    @pytest.fixture(scope="class")
    def figure8_result(self, shared_decomposer):
        config = Figure8Config(
            theta_points=3,
            phi_points=3,
            unitaries_per_application=2,
            applications=["qaoa", "swap"],
            max_layers=4,
            seed=4,
        )
        return run_figure8(config, decomposer=shared_decomposer)

    def test_heatmap_shapes(self, figure8_result):
        for grid in figure8_result.heatmaps.values():
            assert grid.shape == (3, 3)
            assert np.all(grid >= 0)

    def test_identity_corner_is_inexpressive(self, figure8_result):
        """fSim(0, 0) cannot express entangling operations: the corner count is the penalty value."""
        qaoa = figure8_result.heatmaps["qaoa"]
        assert qaoa[0, 0] >= 4

    def test_cz_point_is_expressive_for_qaoa(self, figure8_result):
        """QAOA ZZ interactions need ~2 gates near the CZ point (theta=0, phi=pi)."""
        count = figure8_result.count_at("qaoa", 0.0, np.pi)
        assert count <= 2.5

    def test_swap_point_needs_single_gate_for_swap(self, figure8_result):
        count = figure8_result.count_at("swap", np.pi / 2, np.pi)
        assert count == pytest.approx(1.0)

    def test_best_gate_and_s_type_helpers(self, figure8_result):
        theta, phi, count = figure8_result.best_gate("qaoa")
        assert 0 <= theta <= np.pi / 2 and 0 <= phi <= np.pi
        assert count <= 2.5
        s_counts = figure8_result.s_type_counts("qaoa")
        assert set(s_counts) == {f"S{i}" for i in range(1, 8)}
        assert "Figure 8" in figure8_result.format_table("qaoa")
