"""Tests for the KAK / Weyl local-equivalence machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gates import standard
from repro.gates.kak import (
    MAGIC_BASIS,
    canonical_invariants,
    gamma_matrix,
    invariant_distance,
    is_locally_equivalent,
    local_invariants,
    min_cz_count,
    min_gate_count,
    min_iswap_count,
    min_sqrt_iswap_count,
    weyl_coordinates,
)
from repro.gates.parametric import canonical_gate, cphase, fsim, rzz, u3, xy
from repro.gates.unitary import is_unitary, random_su4, random_unitary

QUARTER = np.pi / 4
ANGLES = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)


def random_local(rng) -> np.ndarray:
    """Random tensor product of single-qubit unitaries."""
    return np.kron(random_unitary(2, rng), random_unitary(2, rng))


class TestMagicBasisAndInvariants:
    def test_magic_basis_is_unitary(self):
        assert is_unitary(MAGIC_BASIS)

    def test_gamma_matrix_is_unitary(self, rng):
        assert is_unitary(gamma_matrix(random_su4(rng)))

    def test_invariants_unchanged_by_local_rotations(self, rng):
        target = random_su4(rng)
        dressed = random_local(rng) @ target @ random_local(rng)
        assert invariant_distance(target, dressed) == pytest.approx(0.0, abs=1e-6)

    def test_invariants_distinguish_different_classes(self):
        assert invariant_distance(standard.CZ, standard.SWAP) > 0.1
        assert invariant_distance(standard.CZ, np.eye(4)) > 0.1

    def test_local_invariants_shape(self, rng):
        e1, e2, e3 = local_invariants(random_su4(rng))
        assert all(isinstance(v, complex) for v in (e1, e2, e3))


class TestLocalEquivalence:
    def test_known_equivalences(self):
        assert is_locally_equivalent(standard.CNOT, standard.CZ)
        assert is_locally_equivalent(standard.ISWAP, xy(np.pi))
        assert is_locally_equivalent(fsim(np.pi / 2, np.pi), standard.SWAP)
        assert not is_locally_equivalent(standard.CZ, standard.ISWAP)

    @given(theta=ANGLES)
    @settings(max_examples=15, deadline=None)
    def test_xy_half_angle_fsim_equivalence(self, theta):
        assert is_locally_equivalent(xy(theta), fsim(theta / 2, 0))

    def test_dressing_with_locals_preserves_equivalence(self, rng):
        target = random_su4(rng)
        dressed = random_local(rng) @ target @ random_local(rng)
        assert is_locally_equivalent(target, dressed)


class TestWeylCoordinates:
    @pytest.mark.parametrize(
        "matrix, expected",
        [
            (np.eye(4), (0.0, 0.0, 0.0)),
            (standard.CZ, (QUARTER, 0.0, 0.0)),
            (standard.CNOT, (QUARTER, 0.0, 0.0)),
            (standard.ISWAP, (QUARTER, QUARTER, 0.0)),
            (standard.SWAP, (QUARTER, QUARTER, QUARTER)),
            (standard.SQRT_ISWAP, (np.pi / 8, np.pi / 8, 0.0)),
        ],
    )
    def test_known_gate_coordinates(self, matrix, expected):
        coords = weyl_coordinates(matrix)
        assert np.allclose(coords, expected, atol=1e-4)

    def test_fsim_coordinates(self):
        theta, phi = 0.7, 1.1
        x, y, z = weyl_coordinates(fsim(theta, phi))
        assert x == pytest.approx(theta / 2, abs=1e-3)
        assert y == pytest.approx(theta / 2, abs=1e-3)
        assert abs(z) == pytest.approx(phi / 4, abs=1e-3)

    def test_coordinates_lie_in_chamber(self, rng):
        for _ in range(3):
            x, y, z = weyl_coordinates(random_su4(rng))
            assert QUARTER + 1e-6 >= x >= y >= abs(z) - 1e-6

    def test_coordinates_reject_non_unitary(self):
        with pytest.raises(ValueError):
            weyl_coordinates(np.ones((4, 4)))

    def test_canonical_gate_roundtrip(self):
        coords = (0.61, 0.32, 0.11)
        recovered = weyl_coordinates(canonical_gate(*coords))
        assert np.allclose(recovered, coords, atol=1e-3)


class TestCanonicalInvariants:
    def test_closed_form_matches_eigenvalue_invariants(self, rng):
        for _ in range(5):
            x, y, z = np.sort(rng.uniform(0.0, QUARTER, size=3))[::-1]
            if rng.uniform() < 0.5:
                z = -z
            closed = np.asarray(canonical_invariants(x, y, z))
            spectral = np.asarray(local_invariants(canonical_gate(x, y, z)))
            assert np.allclose(closed, spectral, atol=1e-12)

    def test_broadcasts_over_coordinate_arrays(self):
        xs = np.array([0.0, QUARTER, 0.3])
        ys = np.array([0.0, 0.0, 0.2])
        zs = np.array([0.0, 0.0, -0.1])
        e1, e2, e3 = canonical_invariants(xs, ys, zs)
        assert e1.shape == e2.shape == e3.shape == (3,)
        for i in range(3):
            scalar = canonical_invariants(xs[i], ys[i], zs[i])
            assert np.allclose([e1[i], e2[i], e3[i]], scalar)


class TestWeylRoundTrip:
    """Round-trips through ``canonical_gate``: the tabulation grid relies on
    ``weyl_coordinates(canonical_gate(*c)) == c`` over the whole chamber."""

    @pytest.mark.parametrize(
        "corner",
        [
            (0.0, 0.0, 0.0),  # identity
            (QUARTER, 0.0, 0.0),  # CZ / CNOT class
            (QUARTER, QUARTER, 0.0),  # iSWAP class
            (QUARTER, QUARTER, QUARTER),  # SWAP class
        ],
    )
    def test_chamber_corner_roundtrip(self, corner):
        recovered = weyl_coordinates(canonical_gate(*corner))
        assert np.allclose(recovered, corner, atol=1e-4)
        assert invariant_distance(
            canonical_gate(*recovered), canonical_gate(*corner)
        ) == pytest.approx(0.0, abs=1e-6)

    def test_randomized_canonical_reconstruction(self, rng):
        # Interior sampling: the invariant map is quadratically flat near
        # the chamber corners and faces, where coordinates are recovered
        # to ~1e-2 at best regardless of implementation.  Away from the
        # boundary the round-trip is sharp.
        for _ in range(6):
            x = rng.uniform(0.3, 0.7)
            y = rng.uniform(0.08, x - 0.05)
            z = rng.uniform(-y + 0.03, y - 0.03)
            target = canonical_gate(x, y, z)
            dressed = random_local(rng) @ target @ random_local(rng)
            recovered = weyl_coordinates(dressed)
            assert invariant_distance(
                canonical_gate(*recovered), target
            ) == pytest.approx(0.0, abs=1e-6)
            assert np.allclose(recovered, (x, y, z), atol=2e-3)

    def test_reconstruction_matches_global_phase_shift(self, rng):
        target = random_su4(rng)
        shifted = np.exp(1.3j) * target
        assert np.allclose(
            weyl_coordinates(target), weyl_coordinates(shifted), atol=1e-6
        )


class TestMinimalGateCounts:
    def test_cz_counts_for_known_gates(self):
        assert min_cz_count(np.eye(4)) == 0
        assert min_cz_count(np.kron(standard.H, standard.X)) == 0
        assert min_cz_count(standard.CZ) == 1
        assert min_cz_count(standard.CNOT) == 1
        assert min_cz_count(rzz(0.3)) == 2
        assert min_cz_count(standard.ISWAP) == 2
        assert min_cz_count(standard.SWAP) == 3

    def test_generic_su4_needs_three_cz(self, rng):
        assert min_cz_count(random_su4(rng)) == 3

    def test_cphase_needs_two_cz(self):
        assert min_cz_count(cphase(np.pi / 2)) == 2

    def test_iswap_counts(self):
        assert min_iswap_count(np.eye(4)) == 0
        assert min_iswap_count(standard.ISWAP) == 1
        assert min_iswap_count(standard.CZ) == 2
        assert min_iswap_count(standard.SWAP) == 3

    def test_sqrt_iswap_counts(self):
        assert min_sqrt_iswap_count(standard.SQRT_ISWAP) == 1
        assert min_sqrt_iswap_count(standard.ISWAP) == 2
        assert min_sqrt_iswap_count(standard.CZ) == 2
        assert min_sqrt_iswap_count(standard.SWAP) == 3

    def test_min_gate_count_dispatch(self, rng):
        unitary = random_su4(rng)
        assert min_gate_count(unitary, "cz") == min_cz_count(unitary)
        assert min_gate_count(standard.SWAP, "iswap") == 3
        with pytest.raises(ValueError):
            min_gate_count(unitary, "syc")

    def test_counts_agree_with_nuop(self, rng, shared_decomposer):
        """The analytic CZ count matches what NuOp actually achieves."""
        from repro.circuits.gate import named_gate

        cz_gate = named_gate("cz")
        for target in (standard.SWAP, rzz(0.4), random_su4(rng)):
            analytic = min_cz_count(target)
            numerical = shared_decomposer.decompose_exact(target, gate=cz_gate).num_layers
            assert numerical == analytic
