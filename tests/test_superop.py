"""The fused superoperator lowering and its kernels.

Contracts under test:

* every fused superoperator group of a lowered program is CPTP (Choi
  matrix positive semidefinite, trace preserved) -- randomized over
  circuits, noise strengths and idle structure;
* fused replay matches the pinned reference replay to ``1e-10`` across
  random 1q/2q programs, with and without noise/idle channels, on both
  the density-matrix and trajectory kernels (same RNG consumption order
  on the stochastic path);
* the lowering actually fuses: one contraction per channel group instead
  of one per Kraus operator, and adjacent same-support groups merge
  across moment boundaries;
* lowered artefacts are derived once per program and cached on it;
* an engine study run end-to-end on the fused kernel agrees with the
  reference-kernel run to ``1e-10`` on every metric column without
  sharing simulation-cache entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.applications import qv_circuit
from repro.circuits.circuit import QuantumCircuit
from repro.core.instruction_sets import google_instruction_set, single_gate_set
from repro.devices.synthetic import synthetic_device
from repro.experiments.engine import clear_experiment_caches, run_study
from repro.experiments.runner import SimulationOptions
from repro.metrics.hop import heavy_output_probability
from repro.simulators.backend import SIM_KERNEL_ENV_VAR
from repro.simulators.density_matrix import apply_program_to_density_matrix
from repro.simulators.noise_model import NoiseModel
from repro.simulators.noise_program import NoiseProgram, build_noise_program
from repro.simulators.statevector import zero_state, zero_states
from repro.simulators.superop import (
    apply_superop_program,
    apply_trajectory_plan_to_state,
    apply_trajectory_plan_to_states,
    channel_superoperator,
    is_cptp_superoperator,
    lower_noise_program,
    superop_program_for,
    superoperator_to_choi,
    trajectory_plan_for,
    unitary_superoperator,
)
from repro.simulators.trajectory import (
    apply_program_to_state,
    apply_program_to_states,
)

TOLERANCE = 1e-10


def random_circuit(num_qubits: int, num_operations: int, seed: int) -> QuantumCircuit:
    """A random mix of 1q and 2q gates (leaves qubits idle in many moments)."""
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_operations):
        kind = rng.integers(0, 7)
        q = int(rng.integers(0, num_qubits))
        if kind == 0:
            circuit.h(q)
        elif kind == 1:
            circuit.x(q)
        elif kind == 2:
            circuit.rx(float(rng.uniform(0, 2 * np.pi)), q)
        elif kind == 3:
            circuit.rz(float(rng.uniform(0, 2 * np.pi)), q)
        elif num_qubits >= 2:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            if kind == 4:
                circuit.cx(int(a), int(b))
            elif kind == 5:
                circuit.cz(int(a), int(b))
            else:
                circuit.swap(int(a), int(b))
        else:
            circuit.ry(float(rng.uniform(0, 2 * np.pi)), q)
    return circuit


def random_program(num_qubits: int, seed: int, noisy: bool) -> NoiseProgram:
    """Lower a random circuit against a random-strength noise model."""
    rng = np.random.default_rng(seed + 1000)
    circuit = random_circuit(num_qubits, num_operations=4 * num_qubits + 4, seed=seed)
    if not noisy:
        return build_noise_program(circuit, None)
    model = NoiseModel.uniform(
        num_qubits,
        two_qubit_error=float(rng.uniform(0.002, 0.05)),
        single_qubit_error=float(rng.uniform(0.0002, 0.01)),
        t1=float(rng.uniform(5_000, 30_000)),
        t2=float(rng.uniform(5_000, 30_000)),
    )
    return build_noise_program(circuit, model)


def random_density_matrix(num_qubits: int, seed: int) -> np.ndarray:
    """A random full-rank density matrix (exercises off-diagonal terms)."""
    rng = np.random.default_rng(seed)
    dim = 2**num_qubits
    raw = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
    rho = raw @ raw.conj().T
    return rho / np.trace(rho)


class TestSuperoperatorAlgebra:
    def test_unitary_superoperator_matches_conjugation(self, rng):
        matrix = np.linalg.qr(
            rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        )[0]
        rho = random_density_matrix(2, 7)
        direct = matrix @ rho @ matrix.conj().T
        via_superop = (unitary_superoperator(matrix) @ rho.reshape(-1)).reshape(4, 4)
        assert np.allclose(via_superop, direct, atol=1e-12)

    def test_channel_superoperator_matches_kraus_sum(self):
        from repro.simulators.noise import amplitude_damping_channel

        channel = amplitude_damping_channel(0.3)
        rho = random_density_matrix(1, 3)
        direct = sum(op @ rho @ op.conj().T for op in channel.operators)
        via_superop = (channel_superoperator(channel) @ rho.reshape(-1)).reshape(2, 2)
        assert np.allclose(via_superop, direct, atol=1e-12)

    def test_choi_of_identity_is_maximally_entangled_projector(self):
        superop = unitary_superoperator(np.eye(2))
        choi = superoperator_to_choi(superop)
        bell = np.array([1, 0, 0, 1], dtype=complex)
        assert np.allclose(choi, np.outer(bell, bell.conj()), atol=1e-12)

    def test_non_tp_map_is_rejected(self):
        # Half an amplitude-damping channel: CP but not trace preserving.
        k0 = np.array([[1, 0], [0, np.sqrt(0.7)]], dtype=complex)
        completely_positive, trace_preserving = is_cptp_superoperator(
            np.kron(k0, k0.conj())
        )
        assert completely_positive
        assert not trace_preserving


class TestFusedGroupsAreCPTP:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_noisy_program_groups(self, num_qubits, seed):
        program = random_program(num_qubits, seed=10 * num_qubits + seed, noisy=True)
        lowered = lower_noise_program(program)
        assert lowered.num_groups() > 0
        for group in lowered.groups:
            completely_positive, trace_preserving = is_cptp_superoperator(
                group.superoperator
            )
            assert completely_positive, f"group on {group.qubits} is not CP"
            assert trace_preserving, f"group on {group.qubits} is not TP"

    def test_unitary_program_groups(self):
        program = random_program(3, seed=5, noisy=False)
        lowered = lower_noise_program(program)
        for group in lowered.groups:
            completely_positive, trace_preserving = is_cptp_superoperator(
                group.superoperator
            )
            assert completely_positive and trace_preserving


class TestFusedMatchesReference:
    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("noisy", [True, False])
    def test_density_matrix_kernel(self, num_qubits, seed, noisy):
        program = random_program(num_qubits, seed=100 + 10 * num_qubits + seed, noisy=noisy)
        rho = random_density_matrix(num_qubits, seed=seed)
        reference = apply_program_to_density_matrix(program, rho.copy())
        fused = apply_superop_program(lower_noise_program(program), rho.copy())
        assert np.abs(fused - reference).max() <= TOLERANCE
        assert np.trace(fused).real == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("num_qubits", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("noisy", [True, False])
    def test_trajectory_batch_kernel(self, num_qubits, seed, noisy):
        program = random_program(num_qubits, seed=200 + 10 * num_qubits + seed, noisy=noisy)
        plan = trajectory_plan_for(program)
        reference = apply_program_to_states(
            program, zero_states(16, num_qubits), np.random.default_rng(seed)
        )
        fused = apply_trajectory_plan_to_states(
            plan, zero_states(16, num_qubits), np.random.default_rng(seed)
        )
        assert np.abs(fused - reference).max() <= TOLERANCE

    @pytest.mark.parametrize("num_qubits", [1, 2, 3])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_trajectory_single_kernel(self, num_qubits, seed):
        program = random_program(num_qubits, seed=300 + 10 * num_qubits + seed, noisy=True)
        plan = trajectory_plan_for(program)
        reference = apply_program_to_state(
            program, zero_state(num_qubits), np.random.default_rng(seed)
        )
        fused = apply_trajectory_plan_to_state(
            plan, zero_state(num_qubits), np.random.default_rng(seed)
        )
        assert np.abs(fused - reference).max() <= TOLERANCE

    def test_trajectory_batch_respects_storage_limit(self):
        """The recompute-per-choice fallback path matches the stacked path."""
        program = random_program(3, seed=77, noisy=True)
        plan = trajectory_plan_for(program)
        stacked = apply_trajectory_plan_to_states(
            plan, zero_states(8, 3), np.random.default_rng(9)
        )
        frugal = apply_trajectory_plan_to_states(
            plan, zero_states(8, 3), np.random.default_rng(9), branch_storage_limit=1
        )
        assert np.abs(stacked - frugal).max() <= TOLERANCE


class TestFusionStructure:
    def test_gate_and_trailing_channels_become_one_group(self):
        """2q gate + 16-operator depolarizing + two thermal channels -> 1 group."""
        circuit = QuantumCircuit(2).cz(0, 1)
        model = NoiseModel.uniform(2, two_qubit_error=0.01, single_qubit_error=0.001)
        program = build_noise_program(circuit, model)
        assert program.num_channel_applications() >= 3
        lowered = lower_noise_program(program)
        assert lowered.num_groups() == 1
        assert lowered.groups[0].qubits == (0, 1)
        # The reference kernel would have dispatched one application per
        # Kraus operator (and two per gate conjugation).
        assert lowered.source_applications > 30

    def test_adjacent_single_qubit_groups_merge_across_moments(self):
        circuit = QuantumCircuit(2).h(0).rz(0.3, 0).rx(0.2, 0).cz(0, 1)
        program = build_noise_program(circuit, None)
        lowered = lower_noise_program(program)
        # Three 1q gates on qubit 0 collapse into one group, then the CZ.
        assert [group.qubits for group in lowered.groups] == [(0,), (0, 1)]

    def test_interleaved_qubits_do_not_merge(self):
        circuit = QuantumCircuit(2).h(0).cz(0, 1).h(0)
        program = build_noise_program(circuit, None)
        lowered = lower_noise_program(program)
        assert [group.qubits for group in lowered.groups] == [(0,), (0, 1), (0,)]

    def test_lowering_is_cached_on_the_program(self):
        program = random_program(2, seed=11, noisy=True)
        assert superop_program_for(program) is superop_program_for(program)
        assert trajectory_plan_for(program) is trajectory_plan_for(program)


class TestFusedStudyEndToEnd:
    def _study_kwargs(self, shared_decomposer):
        return dict(
            application="qv",
            circuits=[qv_circuit(3, rng=np.random.default_rng(i)) for i in range(2)],
            metric_name="HOP",
            metric=heavy_output_probability,
            device_factory=lambda: synthetic_device(5, "line", seed=13),
            instruction_sets={
                "S1": single_gate_set("S1", vendor="google"),
                "G3": google_instruction_set("G3"),
            },
            options=SimulationOptions(shots=900, seed=5),
            decomposer=shared_decomposer,
            workers=1,
        )

    def test_fused_study_matches_reference_study(self, shared_decomposer, monkeypatch):
        kwargs = self._study_kwargs(shared_decomposer)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        clear_experiment_caches()
        reference = run_study(**kwargs)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
        clear_experiment_caches()
        fused = run_study(**kwargs)
        for name, reference_result in reference.per_set.items():
            fused_result = fused.per_set[name]
            np.testing.assert_allclose(
                fused_result.metric_values,
                reference_result.metric_values,
                atol=TOLERANCE,
                rtol=0,
            )
            assert fused_result.two_qubit_counts == reference_result.two_qubit_counts
            assert fused_result.swap_counts == reference_result.swap_counts

    def test_fused_kernel_is_deterministic_across_worker_pools(
        self, shared_decomposer, monkeypatch
    ):
        """The production-default kernel must stay bit-identical between
        inline execution and process-pool workers (the env knob has to
        reach the workers, and the lowering must not depend on where it
        runs)."""
        kwargs = self._study_kwargs(shared_decomposer)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
        clear_experiment_caches()
        serial = run_study(**{**kwargs, "workers": 1})
        clear_experiment_caches()
        parallel = run_study(**{**kwargs, "workers": 2})
        for name, serial_result in serial.per_set.items():
            assert parallel.per_set[name].metric_values == serial_result.metric_values

    def test_kernels_do_not_share_simulation_cache_entries(
        self, shared_decomposer, monkeypatch
    ):
        """A reference-kernel warm cache must not satisfy fused-kernel nodes."""
        from repro.simulators.backend import (
            backend_invocation_counts,
            reset_backend_invocation_counts,
        )

        kwargs = self._study_kwargs(shared_decomposer)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "reference")
        clear_experiment_caches()
        run_study(**kwargs)
        monkeypatch.setenv(SIM_KERNEL_ENV_VAR, "fused")
        reset_backend_invocation_counts()
        run_study(**kwargs)
        assert sum(backend_invocation_counts().values()) > 0
        # Re-running on the same kernel *does* hit the cache.
        reset_backend_invocation_counts()
        run_study(**kwargs)
        assert backend_invocation_counts() == {}
