"""Tests for the Gate objects of the circuit IR."""

import numpy as np
import pytest

from repro.circuits.gate import (
    Gate,
    cphase_gate,
    fsim_gate,
    gate_from_spec,
    named_gate,
    rx_gate,
    rz_gate,
    rzz_gate,
    u3_gate,
    unitary_gate,
    xx_plus_yy_gate,
    xy_gate,
)
from repro.gates import standard
from repro.gates.unitary import random_su4


class TestGateConstruction:
    def test_named_gate_matrix(self):
        assert np.allclose(named_gate("cz").matrix, standard.CZ)
        assert named_gate("cz").num_qubits == 2
        assert named_gate("h").num_qubits == 1

    def test_gate_matrix_is_read_only(self):
        gate = named_gate("x")
        with pytest.raises(ValueError):
            gate.matrix[0, 0] = 5.0

    def test_non_unitary_matrix_rejected(self):
        with pytest.raises(ValueError):
            Gate("bad", np.array([[1, 0], [0, 2]]))

    def test_non_square_matrix_rejected(self):
        with pytest.raises(ValueError):
            Gate("bad", np.ones((2, 3)))

    def test_bad_dimension_rejected(self):
        with pytest.raises(ValueError):
            Gate("bad", np.eye(3))

    def test_parametric_constructors(self):
        assert fsim_gate(0.3, 0.7).params == (0.3, 0.7)
        assert xy_gate(1.0).params == (1.0,)
        assert rz_gate(0.5).name == "rz"
        assert rzz_gate(0.2).is_two_qubit
        assert xx_plus_yy_gate(0.2).is_two_qubit
        assert cphase_gate(0.4).num_qubits == 2
        assert u3_gate(0.1, 0.2, 0.3).num_qubits == 1
        assert rx_gate(0.6).num_qubits == 1

    def test_unitary_gate_wraps_arbitrary_matrix(self, rng):
        matrix = random_su4(rng)
        gate = unitary_gate(matrix, name="block")
        assert gate.name == "block"
        assert np.allclose(gate.matrix, matrix)


class TestGateBehaviour:
    def test_inverse_gate(self):
        gate = fsim_gate(0.5, 1.0)
        product = gate.inverse().matrix @ gate.matrix
        assert np.allclose(product, np.eye(4), atol=1e-9)
        assert gate.inverse().name.endswith("_dg")

    def test_approx_equal_up_to_phase(self):
        a = unitary_gate(np.exp(0.3j) * standard.CZ)
        assert a.approx_equal(named_gate("cz"))
        assert not a.approx_equal(named_gate("swap"))

    def test_type_key_for_fixed_and_parametric_gates(self):
        assert named_gate("cz").type_key == "cz"
        assert xy_gate(np.pi).type_key == "xy(3.141593)"
        key1 = fsim_gate(np.pi / 2, np.pi / 6).type_key
        key2 = fsim_gate(np.pi / 2, np.pi / 6).type_key
        assert key1 == key2
        assert fsim_gate(0.1, 0.2).type_key != fsim_gate(0.1, 0.3).type_key


class TestGateFromSpec:
    def test_standard_names(self):
        assert np.allclose(gate_from_spec("swap").matrix, standard.SWAP)

    def test_parametric_names(self):
        gate = gate_from_spec("fsim", (0.2, 0.4))
        assert gate.params == (0.2, 0.4)

    def test_standard_gate_with_params_rejected(self):
        with pytest.raises(ValueError):
            gate_from_spec("cz", (0.1,))

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            gate_from_spec("mystery")
