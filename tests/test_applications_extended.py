"""Tests for the extended application workloads (beyond the paper's four)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.applications.adder import (
    adder_expected_index,
    adder_suite,
    ripple_carry_adder_circuit,
)
from repro.applications.bernstein_vazirani import (
    bernstein_vazirani_circuit,
    bv_success_probability,
    bv_suite,
    secret_from_probabilities,
)
from repro.applications.ghz import (
    ghz_circuit,
    ghz_ideal_probabilities,
    ghz_suite,
    linear_cluster_circuit,
)
from repro.applications.registry import application_registry, build_suite, paper_applications
from repro.applications.vqe import (
    excitation_preserving_ansatz,
    hardware_efficient_ansatz,
    tfim_trotter_circuit,
    vqe_suite,
)
from repro.simulators.statevector import ideal_probabilities, simulate_statevector


class TestGHZ:
    def test_chain_output_distribution(self):
        probabilities = ideal_probabilities(ghz_circuit(4))
        assert probabilities[0] == pytest.approx(0.5)
        assert probabilities[-1] == pytest.approx(0.5)
        assert probabilities.sum() == pytest.approx(1.0)

    def test_ladder_matches_chain_distribution(self):
        chain = ideal_probabilities(ghz_circuit(5, ladder=False))
        ladder = ideal_probabilities(ghz_circuit(5, ladder=True))
        np.testing.assert_allclose(chain, ladder, atol=1e-9)

    def test_ladder_is_shallower_for_wide_circuits(self):
        assert ghz_circuit(8, ladder=True).two_qubit_depth() < ghz_circuit(8).two_qubit_depth()

    def test_ideal_probabilities_helper(self):
        np.testing.assert_allclose(
            ghz_ideal_probabilities(3), ideal_probabilities(ghz_circuit(3)), atol=1e-9
        )

    def test_two_qubit_gate_count(self):
        assert ghz_circuit(6).num_two_qubit_gates() == 5

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            ghz_circuit(1)

    def test_suite_mix(self):
        circuits = ghz_suite(4, num_circuits=4, seed=1)
        assert len(circuits) == 4
        assert all(c.num_qubits == 4 for c in circuits)


class TestCluster:
    def test_all_two_qubit_gates_are_cz(self):
        circuit = linear_cluster_circuit(5)
        counts = circuit.count_ops()
        assert counts["cz"] == 4
        assert counts["h"] == 5

    def test_uniform_marginal(self):
        # Each qubit of a cluster state is maximally mixed: the output
        # distribution over any single qubit is uniform.
        probabilities = ideal_probabilities(linear_cluster_circuit(3))
        first_qubit_one = probabilities[4:].sum()
        assert first_qubit_one == pytest.approx(0.5)

    def test_rejects_single_qubit(self):
        with pytest.raises(ValueError):
            linear_cluster_circuit(1)


class TestBernsteinVazirani:
    @pytest.mark.parametrize("secret", [[1], [1, 0, 1], [0, 1, 1, 0, 1]])
    def test_recovers_secret_noiselessly(self, secret):
        circuit = bernstein_vazirani_circuit(secret)
        probabilities = ideal_probabilities(circuit)
        assert secret_from_probabilities(probabilities, len(secret)) == list(secret)
        assert bv_success_probability(probabilities, secret) == pytest.approx(1.0)

    def test_two_qubit_count_equals_hamming_weight(self):
        secret = [1, 0, 1, 1]
        assert bernstein_vazirani_circuit(secret).num_two_qubit_gates() == 3

    def test_rejects_bad_secret(self):
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit([])
        with pytest.raises(ValueError):
            bernstein_vazirani_circuit([0, 2])

    def test_suite_secrets_nonzero(self):
        for circuit in bv_suite(4, num_circuits=5, seed=3):
            assert circuit.num_two_qubit_gates() >= 1

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=5))
    @settings(max_examples=20, deadline=None)
    def test_success_probability_always_one_ideally(self, secret):
        if not any(secret):
            secret[0] = 1
        probabilities = ideal_probabilities(bernstein_vazirani_circuit(secret))
        assert bv_success_probability(probabilities, secret) == pytest.approx(1.0, abs=1e-9)


class TestVQEAnsatze:
    def test_hardware_efficient_structure(self):
        circuit = hardware_efficient_ansatz(4, num_layers=2, rng=np.random.default_rng(0))
        counts = circuit.count_ops()
        assert counts["ry"] == 4 * 3
        assert counts["rz"] == 4 * 3
        assert counts["cz"] == 3 * 2

    def test_parameter_count_validation(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(3, num_layers=1, parameters=[0.1, 0.2])

    def test_entanglement_patterns(self):
        linear = hardware_efficient_ansatz(4, 1, entanglement="linear", rng=np.random.default_rng(1))
        circular = hardware_efficient_ansatz(4, 1, entanglement="circular", rng=np.random.default_rng(1))
        assert circular.num_two_qubit_gates() == linear.num_two_qubit_gates() + 1
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(4, 1, entanglement="all-to-all")

    def test_excitation_preserving_conserves_excitations(self):
        circuit = excitation_preserving_ansatz(4, num_layers=2, rng=np.random.default_rng(2))
        state = simulate_statevector(circuit)
        probabilities = np.abs(state) ** 2
        # Initial half filling has 2 excitations; every populated basis
        # state must keep that Hamming weight.
        for index, probability in enumerate(probabilities):
            if probability > 1e-9:
                assert bin(index).count("1") == 2

    def test_tfim_gate_counts(self):
        circuit = tfim_trotter_circuit(5, trotter_steps=3)
        counts = circuit.count_ops()
        assert counts["rzz"] == 4 * 3
        assert counts["rx"] == 5 * 3
        assert counts["h"] == 5

    def test_vqe_suite_and_unknown_ansatz(self):
        assert len(vqe_suite(3, 2, seed=0)) == 2
        with pytest.raises(ValueError):
            vqe_suite(3, 1, ansatz="qaoa")

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            hardware_efficient_ansatz(1)
        with pytest.raises(ValueError):
            excitation_preserving_ansatz(1)
        with pytest.raises(ValueError):
            tfim_trotter_circuit(1)


class TestAdder:
    @pytest.mark.parametrize("num_bits,a,b", [(1, 1, 1), (2, 1, 2), (2, 3, 3), (3, 5, 6)])
    def test_adds_correctly(self, num_bits, a, b):
        circuit = ripple_carry_adder_circuit(num_bits, a, b)
        probabilities = ideal_probabilities(circuit)
        expected = adder_expected_index(num_bits, a, b)
        assert probabilities[expected] == pytest.approx(1.0, abs=1e-7)

    def test_rejects_out_of_range_inputs(self):
        with pytest.raises(ValueError):
            ripple_carry_adder_circuit(2, 4, 0)
        with pytest.raises(ValueError):
            ripple_carry_adder_circuit(0, 0, 0)

    def test_only_one_and_two_qubit_gates(self):
        circuit = ripple_carry_adder_circuit(2, 2, 1)
        assert all(len(op.qubits) <= 2 for op in circuit)

    def test_suite(self):
        circuits = adder_suite(2, num_circuits=3, seed=7)
        assert len(circuits) == 3
        assert all(c.num_qubits == 6 for c in circuits)

    @given(
        num_bits=st.integers(min_value=1, max_value=3),
        a=st.integers(min_value=0, max_value=7),
        b=st.integers(min_value=0, max_value=7),
    )
    @settings(max_examples=15, deadline=None)
    def test_adder_property(self, num_bits, a, b):
        limit = 2**num_bits
        a %= limit
        b %= limit
        circuit = ripple_carry_adder_circuit(num_bits, a, b)
        probabilities = ideal_probabilities(circuit)
        assert probabilities[adder_expected_index(num_bits, a, b)] == pytest.approx(1.0, abs=1e-7)


class TestRegistry:
    def test_paper_applications(self):
        assert set(paper_applications()) == {"qv", "qaoa", "fh", "qft"}

    def test_registry_builds_every_application(self):
        registry = application_registry()
        for name in registry:
            circuits = build_suite(name, num_qubits=4, num_circuits=1, seed=0)
            assert circuits, name
            assert all(len(op.qubits) <= 2 for op in circuits[0]), name

    def test_metrics_are_known_names(self):
        allowed = {"HOP", "XED", "XEB", "success_rate"}
        for spec in application_registry().values():
            assert spec.recommended_metric in allowed

    def test_unknown_application_raises(self):
        with pytest.raises(ValueError):
            build_suite("teleportation", 3)
