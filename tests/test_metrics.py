"""Tests for the application reliability metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.distributions import (
    cross_entropy,
    hellinger_fidelity,
    kl_divergence,
    permute_distribution,
    total_variation_distance,
    uniform_distribution,
    validate_distribution,
)
from repro.metrics.hop import (
    heavy_output_probability,
    heavy_output_set,
    ideal_heavy_output_probability,
    passes_quantum_volume_threshold,
)
from repro.metrics.success import success_rate
from repro.metrics.xeb import (
    cross_entropy_difference,
    linear_xeb_fidelity,
    normalized_linear_xeb_fidelity,
)

distributions = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=4, max_size=4
).map(lambda values: np.array(values) / np.sum(values))


class TestDistributionHelpers:
    def test_validate_normalises(self):
        assert np.allclose(validate_distribution([2.0, 2.0]), [0.5, 0.5])

    def test_validate_rejects_bad_input(self):
        with pytest.raises(ValueError):
            validate_distribution([[0.5, 0.5]])
        with pytest.raises(ValueError):
            validate_distribution([-0.5, 1.5])
        with pytest.raises(ValueError):
            validate_distribution([0.0, 0.0])

    def test_tvd_and_hellinger_extremes(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert total_variation_distance(p, q) == pytest.approx(1.0)
        assert total_variation_distance(p, p) == pytest.approx(0.0)
        assert hellinger_fidelity(p, q) == pytest.approx(0.0)
        assert hellinger_fidelity(p, p) == pytest.approx(1.0)

    def test_kl_and_cross_entropy(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.9, 0.1])
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)
        assert kl_divergence(p, q) > 0
        assert cross_entropy(p, p) == pytest.approx(np.log(2))

    @given(p=distributions, q=distributions)
    @settings(max_examples=25, deadline=None)
    def test_tvd_bounds_and_symmetry(self, p, q):
        d = total_variation_distance(p, q)
        assert 0 <= d <= 1
        assert d == pytest.approx(total_variation_distance(q, p))

    def test_permute_distribution_swaps_qubits(self):
        # Distribution concentrated on |01> (qubit0=0, qubit1=1).
        probs = np.array([0.0, 1.0, 0.0, 0.0])
        swapped = permute_distribution(probs, [1, 0])
        assert swapped[2] == pytest.approx(1.0)

    def test_permute_distribution_validates(self):
        with pytest.raises(ValueError):
            permute_distribution(np.ones(4) / 4, [0, 0])

    def test_uniform_distribution(self):
        assert np.allclose(uniform_distribution(3), 1 / 8)


class TestHeavyOutputProbability:
    def test_heavy_set_above_median(self):
        ideal = np.array([0.4, 0.3, 0.2, 0.1])
        heavy = heavy_output_set(ideal)
        assert heavy == {0, 1}

    def test_perfect_and_uniform_executions(self):
        ideal = np.array([0.4, 0.3, 0.2, 0.1])
        assert heavy_output_probability(ideal, ideal) == pytest.approx(0.7)
        assert heavy_output_probability(np.ones(4) / 4, ideal) == pytest.approx(0.5)
        assert ideal_heavy_output_probability(ideal) == pytest.approx(0.7)

    def test_threshold_check(self):
        assert passes_quantum_volume_threshold([0.7, 0.75])
        assert not passes_quantum_volume_threshold([0.5, 0.6])
        with pytest.raises(ValueError):
            passes_quantum_volume_threshold([])


class TestCrossEntropyMetrics:
    def test_xed_limits(self):
        ideal = np.array([0.5, 0.25, 0.15, 0.1])
        assert cross_entropy_difference(ideal, ideal) == pytest.approx(1.0)
        assert cross_entropy_difference(np.ones(4) / 4, ideal) == pytest.approx(0.0, abs=1e-12)

    def test_xed_degrades_with_mixing(self):
        ideal = np.array([0.5, 0.25, 0.15, 0.1])
        half_mixed = 0.5 * ideal + 0.5 * np.ones(4) / 4
        value = cross_entropy_difference(half_mixed, ideal)
        assert 0.0 < value < 1.0

    def test_xed_of_flat_ideal_distribution_is_zero(self):
        flat = np.ones(4) / 4
        assert cross_entropy_difference(flat, flat) == 0.0

    def test_linear_xeb_limits(self):
        ideal = np.array([0.5, 0.25, 0.15, 0.1])
        assert linear_xeb_fidelity(np.ones(4) / 4, ideal) == pytest.approx(0.0, abs=1e-12)
        assert linear_xeb_fidelity(ideal, ideal) > 0.0

    def test_normalized_linear_xeb(self):
        ideal = np.array([0.5, 0.25, 0.15, 0.1])
        assert normalized_linear_xeb_fidelity(ideal, ideal) == pytest.approx(1.0)
        assert normalized_linear_xeb_fidelity(np.ones(4) / 4, ideal) == pytest.approx(0.0, abs=1e-12)
        mixed = 0.7 * ideal + 0.3 * np.ones(4) / 4
        assert 0.6 < normalized_linear_xeb_fidelity(mixed, ideal) < 0.8


class TestSuccessRate:
    def test_single_and_multiple_outcomes(self):
        measured = np.array([0.1, 0.6, 0.2, 0.1])
        assert success_rate(measured, 1) == pytest.approx(0.6)
        assert success_rate(measured, [1, 2]) == pytest.approx(0.8)

    def test_out_of_range_outcome_rejected(self):
        with pytest.raises(ValueError):
            success_rate(np.ones(4) / 4, 7)
