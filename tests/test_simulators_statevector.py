"""Tests for the statevector simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.circuit import QuantumCircuit
from repro.gates import standard
from repro.gates.unitary import embed_unitary, random_su4, random_unitary
from repro.simulators.statevector import (
    apply_gate,
    apply_gate_batch,
    expectation_value,
    ideal_probabilities,
    probabilities,
    simulate_statevector,
    state_fidelity,
    zero_state,
    zero_states,
)


def _explicit_two_qubit_operator(gate: np.ndarray, qubits, num_qubits: int) -> np.ndarray:
    """Full 2^n x 2^n operator built entry-by-entry from first principles.

    Independent of :func:`embed_unitary` (whose own tests use library
    conventions): each matrix element is computed by reading the target
    qubits' bits out of the column index, applying the 4x4 gate, and
    writing the result bits into the row index.  Qubit 0 is the most
    significant bit of a basis index (library convention).
    """
    a, b = qubits
    dim = 2**num_qubits
    full = np.zeros((dim, dim), dtype=complex)
    for column in range(dim):
        bit_a = (column >> (num_qubits - 1 - a)) & 1
        bit_b = (column >> (num_qubits - 1 - b)) & 1
        gate_column = 2 * bit_a + bit_b
        for gate_row in range(4):
            new_a, new_b = gate_row >> 1, gate_row & 1
            row = column
            row &= ~(1 << (num_qubits - 1 - a))
            row &= ~(1 << (num_qubits - 1 - b))
            row |= new_a << (num_qubits - 1 - a)
            row |= new_b << (num_qubits - 1 - b)
            full[row, column] += gate[gate_row, gate_column]
    return full


class TestApplyGate:
    def test_apply_gate_matches_embedded_unitary(self, rng):
        for _ in range(3):
            num_qubits = 4
            state = random_unitary(2**num_qubits, rng)[:, 0]
            gate = random_su4(rng)
            qubits = list(rng.choice(num_qubits, size=2, replace=False))
            via_apply = apply_gate(state, gate, qubits, num_qubits)
            via_embed = embed_unitary(gate, qubits, num_qubits) @ state
            assert np.allclose(via_apply, via_embed)

    def test_apply_single_qubit_gate(self):
        state = zero_state(2)
        result = apply_gate(state, standard.X, [1], 2)
        assert np.allclose(result, np.eye(4)[:, 1])
        result = apply_gate(state, standard.X, [0], 2)
        assert np.allclose(result, np.eye(4)[:, 2])

    def test_apply_gate_preserves_norm(self, rng):
        state = random_unitary(8, rng)[:, 0]
        result = apply_gate(state, random_su4(rng), [0, 2], 3)
        assert np.linalg.norm(result) == pytest.approx(1.0)


class TestApplyGateQubitOrderings:
    """Regression tests against explicit Kronecker-style construction.

    ``apply_gate``'s tensor-contraction axis bookkeeping is easy to break
    for reversed and non-adjacent qubit orderings; each case below checks
    a 3- or 4-qubit state against a full operator built bit-by-bit.
    """

    CASES = [
        (3, (0, 1)),  # adjacent, in order
        (3, (1, 0)),  # adjacent, reversed
        (3, (0, 2)),  # non-adjacent, in order
        (3, (2, 0)),  # non-adjacent, reversed
        (4, (1, 3)),  # non-adjacent, in order
        (4, (3, 1)),  # non-adjacent, reversed
        (4, (3, 0)),  # endpoints, reversed
        (4, (2, 1)),  # adjacent, reversed, interior
    ]

    @pytest.mark.parametrize("num_qubits,qubits", CASES)
    def test_random_su4_on_ordering(self, num_qubits, qubits, rng):
        gate = random_su4(rng)
        state = random_unitary(2**num_qubits, rng)[:, 0]
        expected = _explicit_two_qubit_operator(gate, qubits, num_qubits) @ state
        assert np.allclose(apply_gate(state, gate, qubits, num_qubits), expected)

    @pytest.mark.parametrize("num_qubits,qubits", CASES)
    def test_cx_asymmetry_detected(self, num_qubits, qubits, rng):
        """CX is order-sensitive, so swapped qubit arguments must differ."""
        gate = np.asarray(standard.CNOT, dtype=complex)
        state = random_unitary(2**num_qubits, rng)[:, 0]
        expected = _explicit_two_qubit_operator(gate, qubits, num_qubits) @ state
        result = apply_gate(state, gate, qubits, num_qubits)
        assert np.allclose(result, expected)
        flipped = apply_gate(state, gate, qubits[::-1], num_qubits)
        assert not np.allclose(result, flipped)

    @pytest.mark.parametrize("num_qubits,qubits", CASES)
    def test_batch_matches_per_state_loop(self, num_qubits, qubits, rng):
        gate = random_su4(rng)
        states = np.stack([random_unitary(2**num_qubits, rng)[:, 0] for _ in range(5)])
        batched = apply_gate_batch(states, gate, qubits, num_qubits)
        looped = np.stack(
            [apply_gate(state, gate, qubits, num_qubits) for state in states]
        )
        assert np.allclose(batched, looped)

    def test_zero_states_stack(self):
        states = zero_states(4, 3)
        assert states.shape == (4, 8)
        assert np.allclose(states[:, 0], 1.0)
        assert np.allclose(states[:, 1:], 0.0)


class TestSimulation:
    def test_bell_state(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        state = simulate_statevector(circuit)
        expected = np.array([1, 0, 0, 1]) / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_ghz_probabilities(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        probs = ideal_probabilities(circuit)
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)
        assert probs.sum() == pytest.approx(1.0)

    def test_custom_initial_state(self):
        circuit = QuantumCircuit(1).x(0)
        state = simulate_statevector(circuit, initial_state=np.array([0, 1], dtype=complex))
        assert np.allclose(state, [1, 0])

    def test_initial_state_dimension_checked(self):
        with pytest.raises(ValueError):
            simulate_statevector(QuantumCircuit(2), initial_state=np.ones(3))

    def test_simulation_matches_circuit_unitary(self, rng):
        circuit = QuantumCircuit(3)
        circuit.h(0).unitary(random_su4(rng), [0, 2]).cz(1, 2).rz(0.3, 0)
        state = simulate_statevector(circuit)
        assert np.allclose(state, circuit.to_unitary()[:, 0])


class TestHelpers:
    def test_probabilities_normalise(self):
        probs = probabilities(np.array([1.0, 1.0j]))
        assert np.allclose(probs, [0.5, 0.5])

    def test_probabilities_reject_zero_state(self):
        with pytest.raises(ValueError):
            probabilities(np.zeros(4))

    def test_expectation_value_of_pauli_z(self):
        plus = np.array([1, 1]) / np.sqrt(2)
        assert expectation_value(plus, standard.Z) == pytest.approx(0.0, abs=1e-12)
        assert expectation_value(np.array([1, 0]), standard.Z) == pytest.approx(1.0)

    @given(phase=st.floats(min_value=0, max_value=2 * np.pi, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_state_fidelity_ignores_global_phase(self, phase):
        state = np.array([0.6, 0.8j])
        assert state_fidelity(state, np.exp(1j * phase) * state) == pytest.approx(1.0)

    def test_state_fidelity_orthogonal_states(self):
        assert state_fidelity(np.array([1, 0]), np.array([0, 1])) == pytest.approx(0.0)
